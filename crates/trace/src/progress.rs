//! Live progress/heartbeat channel for long-running sweeps and fleets.
//!
//! Engines (`sweep_matrix`, `run_fleet`, `run_rollout`) tick a shared
//! [`Progress`] from their worker closures — a couple of relaxed atomic
//! adds per item, nothing on the hot path when no observer is attached.
//! The CLI attaches a monitor thread that snapshots the counters about
//! once a second, prints a heartbeat line to stderr, and optionally
//! appends a JSONL record per sample to `--progress-out`.
//!
//! Everything here is *measurement*, never result identity: progress
//! samples include host wall-clock and rates, and no report content
//! depends on them, so byte-identity across `--jobs` widths is untouched.

use crate::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Shared progress state, updated by engine workers and sampled by a
/// monitor thread.
#[derive(Debug)]
pub struct Progress {
    phase: Mutex<String>,
    done: AtomicU64,
    total: AtomicU64,
    /// 1-based rollout wave index (0 = not in a wave-structured phase).
    wave: AtomicU64,
    waves: AtomicU64,
    started: Instant,
}

impl Default for Progress {
    fn default() -> Self {
        Self::new()
    }
}

impl Progress {
    /// Fresh progress state; the clock starts now.
    pub fn new() -> Self {
        Self {
            phase: Mutex::new(String::new()),
            done: AtomicU64::new(0),
            total: AtomicU64::new(0),
            wave: AtomicU64::new(0),
            waves: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Enters a named phase with `total` expected work items, resetting
    /// the done counter.
    pub fn begin_phase(&self, name: &str, total: u64) {
        *self.phase.lock().unwrap() = name.to_string();
        self.done.store(0, Ordering::Relaxed);
        self.total.store(total, Ordering::Relaxed);
    }

    /// Records the current rollout wave (1-based) of `waves`.
    pub fn set_wave(&self, wave: u64, waves: u64) {
        self.wave.store(wave, Ordering::Relaxed);
        self.waves.store(waves, Ordering::Relaxed);
    }

    /// Ticks `n` completed items in the current phase.
    pub fn add(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters for rendering.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            phase: self.phase.lock().unwrap().clone(),
            done: self.done.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
            wave: self.wave.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            elapsed_ms: self.started.elapsed().as_millis() as u64,
        }
    }
}

/// One sampled heartbeat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Current phase name (`"devices"`, `"inject"`, `"reconcile"`, …).
    pub phase: String,
    /// Items completed in this phase.
    pub done: u64,
    /// Items expected in this phase (0 = unknown).
    pub total: u64,
    /// 1-based wave index, 0 outside wave-structured phases.
    pub wave: u64,
    /// Total waves, 0 outside wave-structured phases.
    pub waves: u64,
    /// Host milliseconds since the progress clock started.
    pub elapsed_ms: u64,
}

impl ProgressSnapshot {
    /// Completed items per second over the whole run so far.
    pub fn rate_per_sec(&self) -> u64 {
        (self.done * 1000).checked_div(self.elapsed_ms).unwrap_or(0)
    }

    /// Milliseconds to phase completion extrapolated from throughput;
    /// `None` when the total or rate is unknown.
    pub fn eta_ms(&self) -> Option<u64> {
        let rate = self.rate_per_sec();
        if rate == 0 || self.total == 0 || self.done >= self.total {
            return None;
        }
        Some((self.total - self.done) * 1000 / rate)
    }

    /// The human heartbeat line for stderr.
    pub fn stderr_line(&self) -> String {
        let mut line = format!("progress: {} {}/{}", self.phase, self.done, self.total);
        if self.waves > 0 {
            line.push_str(&format!(" (wave {}/{})", self.wave, self.waves));
        }
        line.push_str(&format!(", {}/s", self.rate_per_sec()));
        match self.eta_ms() {
            Some(eta) => line.push_str(&format!(", ETA {:.1}s", eta as f64 / 1000.0)),
            None => line.push_str(", ETA unknown"),
        }
        line
    }

    /// The machine record for `--progress-out` (one compact JSON line).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![
            ("phase".into(), Value::str(self.phase.clone())),
            ("done".into(), Value::u64(self.done)),
            ("total".into(), Value::u64(self.total)),
        ];
        if self.waves > 0 {
            fields.push(("wave".into(), Value::u64(self.wave)));
            fields.push(("waves".into(), Value::u64(self.waves)));
        }
        fields.push(("rate_per_sec".into(), Value::u64(self.rate_per_sec())));
        if let Some(eta) = self.eta_ms() {
            fields.push(("eta_ms".into(), Value::u64(eta)));
        }
        fields.push(("elapsed_ms".into(), Value::u64(self.elapsed_ms)));
        Value::Obj(fields).to_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_reset_done_and_track_waves() {
        let p = Progress::new();
        p.begin_phase("devices", 100);
        p.add(30);
        p.add(10);
        let s = p.snapshot();
        assert_eq!((s.phase.as_str(), s.done, s.total), ("devices", 40, 100));
        p.set_wave(2, 8);
        p.begin_phase("reconcile", 1);
        let s = p.snapshot();
        assert_eq!((s.done, s.total, s.wave, s.waves), (0, 1, 2, 8));
    }

    #[test]
    fn snapshot_renders_rate_eta_and_json() {
        let s = ProgressSnapshot {
            phase: "inject".into(),
            done: 500,
            total: 2000,
            wave: 0,
            waves: 0,
            elapsed_ms: 1000,
        };
        assert_eq!(s.rate_per_sec(), 500);
        assert_eq!(s.eta_ms(), Some(3000));
        assert_eq!(
            s.stderr_line(),
            "progress: inject 500/2000, 500/s, ETA 3.0s"
        );
        let line = s.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"eta_ms\":3000"), "{line}");
        let parsed = crate::json::parse(&line).unwrap();
        assert_eq!(parsed.get("done").and_then(Value::as_u64), Some(500));
    }

    #[test]
    fn eta_is_unknown_without_total_or_throughput() {
        let mut s = ProgressSnapshot {
            phase: "oracle".into(),
            done: 0,
            total: 0,
            wave: 1,
            waves: 4,
            elapsed_ms: 0,
        };
        assert_eq!(s.eta_ms(), None);
        assert_eq!(
            s.stderr_line(),
            "progress: oracle 0/0 (wave 1/4), 0/s, ETA unknown"
        );
        s.total = 10;
        s.done = 10;
        s.elapsed_ms = 50;
        assert_eq!(s.eta_ms(), None, "completed phases have no ETA");
    }
}
