//! The structured event vocabulary shared by every layer of the stack.
//!
//! One run produces one flat stream of [`Event`]s: spans (a begin/end pair
//! bracketing an interval of simulated time) and instants (a point
//! occurrence). The vocabulary is runtime-independent — Naive, Alpaca, InK
//! and EaseIO all emit the same kinds, differing only in *which* events show
//! up (a baseline never emits `FlagCheck`, EaseIO rarely emits `Redundant`
//! I/O ends) — so traces from different runtimes are directly comparable in
//! the same viewer.
//!
//! Events are plain `Copy` data with `&'static str` names: recording one is
//! a handful of word moves, cheap enough to leave compiled in.

/// `task` value for events not attributed to a task.
pub const NO_TASK: u16 = u16::MAX;
/// `site` value for events not attributed to a call site.
pub const NO_SITE: u16 = u16::MAX;

/// What kind of interval a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One execution attempt of a task body (entry to commit/failure).
    TaskAttempt,
    /// The atomic commit step at task end (publication + pointer update).
    Commit,
    /// One `_call_IO` site activation (decision + execution or restore).
    IoCall,
    /// One `_IO_block_begin` … `_IO_block_end` region.
    IoBlock,
    /// One `_DMA_copy` site activation.
    DmaCopy,
    /// A dead period: from power failure to the next boot.
    PowerOff,
    /// One parallel-engine worker's busy interval (host wall-clock, not
    /// simulated time): `task` carries the worker index. Emitted by the
    /// execution engine, never by the simulated MCU.
    Worker,
}

impl SpanKind {
    /// Stable lowercase label used in exported JSON.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::TaskAttempt => "task_attempt",
            SpanKind::Commit => "commit",
            SpanKind::IoCall => "io_call",
            SpanKind::IoBlock => "io_block",
            SpanKind::DmaCopy => "dma_copy",
            SpanKind::PowerOff => "power_off",
            SpanKind::Worker => "worker",
        }
    }
}

/// A point occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstantKind {
    /// The MCU (re)booted.
    Boot,
    /// The supply interrupted execution.
    PowerFailure,
    /// The supply finished recharging after an off period.
    ChargeCycle,
    /// A runtime privatized state (WAR copy, buffered var, region snapshot).
    Privatize,
    /// EaseIO consulted an I/O lock flag.
    FlagCheck,
    /// EaseIO evaluated a `Timely` timestamp; `name` is `"fresh"`/`"expired"`.
    TimestampCheck,
    /// EaseIO entered a privatization region.
    RegionEnter,
    /// EaseIO reconciled (restored) a region's snapshots on re-entry.
    RegionReconcile,
    /// The executor abandoned a task (non-termination guard).
    GiveUp,
    /// A peripheral faulted transiently; `name` is the fault kind.
    PeriphFault,
    /// The task context retried a faulted I/O or DMA attempt.
    IoRetry,
    /// Retry budget exhausted; the operation degraded (skip or fallback);
    /// `name` is `"skip"` or `"fallback"`.
    Degraded,
}

impl InstantKind {
    /// Stable lowercase label used in exported JSON.
    pub fn label(self) -> &'static str {
        match self {
            InstantKind::Boot => "boot",
            InstantKind::PowerFailure => "power_failure",
            InstantKind::ChargeCycle => "charge_cycle",
            InstantKind::Privatize => "privatize",
            InstantKind::FlagCheck => "flag_check",
            InstantKind::TimestampCheck => "timestamp_check",
            InstantKind::RegionEnter => "region_enter",
            InstantKind::RegionReconcile => "region_reconcile",
            InstantKind::GiveUp => "give_up",
            InstantKind::PeriphFault => "periph_fault",
            InstantKind::IoRetry => "io_retry",
            InstantKind::Degraded => "degraded",
        }
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Status {
    /// No particular outcome (span begins, instants).
    None,
    /// The task attempt was a re-execution of an interrupted activation.
    Reexec,
    /// The task attempt (or commit) completed and published.
    Committed,
    /// A power failure interrupted the span.
    Failed,
    /// The non-termination guard abandoned the span.
    GaveUp,
    /// The I/O or DMA physically executed, first completion this activation.
    Executed,
    /// The I/O or DMA physically executed *again* after already completing
    /// in an earlier attempt of the same activation — wasted work.
    Redundant,
    /// The I/O or DMA was skipped; its previous output was restored.
    Skipped,
}

impl Status {
    /// Stable lowercase label used in exported JSON.
    pub fn label(self) -> &'static str {
        match self {
            Status::None => "none",
            Status::Reexec => "reexec",
            Status::Committed => "committed",
            Status::Failed => "failed",
            Status::GaveUp => "gave_up",
            Status::Executed => "executed",
            Status::Redundant => "redundant",
            Status::Skipped => "skipped",
        }
    }
}

/// Span begin / span end / instant discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Opens a span. The matching end is the next `SpanEnd` of the same
    /// `(SpanKind, task, site)` in stack order.
    SpanBegin(SpanKind),
    /// Closes the most recently opened span of this `(SpanKind, task, site)`.
    SpanEnd(SpanKind, Status),
    /// A point event.
    Instant(InstantKind),
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual wall-clock time (µs since run start, includes off periods).
    pub ts_us: u64,
    /// Cumulative energy spent at this point (nJ, app + overhead).
    pub energy_nj: u64,
    /// Task index, or [`NO_TASK`].
    pub task: u16,
    /// Call-site index within the task (I/O, DMA and block sites are
    /// numbered independently), or [`NO_SITE`].
    pub site: u16,
    /// Human-readable name: task name, I/O kind, runtime name, etc.
    pub name: &'static str,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// An instant with no task/site attribution.
    pub fn instant(ts_us: u64, energy_nj: u64, kind: InstantKind, name: &'static str) -> Self {
        Self {
            ts_us,
            energy_nj,
            task: NO_TASK,
            site: NO_SITE,
            name,
            kind: EventKind::Instant(kind),
        }
    }

    /// An instant attributed to a task.
    pub fn task_instant(
        ts_us: u64,
        energy_nj: u64,
        task: u16,
        kind: InstantKind,
        name: &'static str,
    ) -> Self {
        Self {
            ts_us,
            energy_nj,
            task,
            site: NO_SITE,
            name,
            kind: EventKind::Instant(kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_lowercase() {
        assert_eq!(SpanKind::IoCall.label(), "io_call");
        assert_eq!(InstantKind::PowerFailure.label(), "power_failure");
        assert_eq!(Status::Redundant.label(), "redundant");
        assert_eq!(InstantKind::PeriphFault.label(), "periph_fault");
        assert_eq!(InstantKind::IoRetry.label(), "io_retry");
        assert_eq!(InstantKind::Degraded.label(), "degraded");
        for l in [
            SpanKind::TaskAttempt.label(),
            InstantKind::RegionReconcile.label(),
            Status::GaveUp.label(),
        ] {
            assert_eq!(l, l.to_lowercase());
        }
    }

    #[test]
    fn instant_constructor_leaves_attribution_empty() {
        let e = Event::instant(5, 9, InstantKind::Boot, "boot");
        assert_eq!(e.task, NO_TASK);
        assert_eq!(e.site, NO_SITE);
        assert_eq!(e.kind, EventKind::Instant(InstantKind::Boot));
    }
}
