//! Incremental JSONL streaming sinks and the process-wide flush registry.
//!
//! Fleet-scale runs (ISSUE 10) write per-device records as each device
//! completes instead of holding the whole population in memory. Workers
//! append to private *shard* files in completion order; because the pool's
//! work cursor hands out item indices monotonically, each shard is
//! internally sorted by device index, and [`ShardedSink::merge_into`]
//! k-way-merges the shards into a single device-ordered JSONL stream on
//! finalize. The merged output is therefore byte-identical at any
//! `--jobs` width.
//!
//! The [`flush_registered`] registry closes the satellite bug where
//! buffered JSONL tails were silently lost on early exits: every sink
//! created through [`JsonlWriter::create_registered`] is flushed by the
//! CLI's typed `exit()` before the process terminates, on success and
//! failure paths alike.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// A line-buffered JSONL writer with an explicit flush.
#[derive(Debug)]
pub struct JsonlWriter {
    path: String,
    w: BufWriter<File>,
}

impl JsonlWriter {
    /// Creates (truncates) `path`.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(Self {
            path: path.to_string(),
            w: BufWriter::new(File::create(path)?),
        })
    }

    /// Creates `path` and registers the writer in the process-wide flush
    /// registry, so typed CLI exits flush it even on error paths.
    pub fn create_registered(path: &str) -> std::io::Result<Arc<Mutex<JsonlWriter>>> {
        let w = Arc::new(Mutex::new(Self::create(path)?));
        register_for_flush(&w);
        Ok(w)
    }

    /// Appends one line (the newline is added here).
    pub fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.w.write_all(line.as_bytes())?;
        self.w.write_all(b"\n")
    }

    /// Flushes buffered lines to the OS.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &str {
        &self.path
    }
}

// ------------------------------------------------------------- registry --

fn registry() -> &'static Mutex<Vec<Weak<Mutex<JsonlWriter>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<Mutex<JsonlWriter>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a writer so [`flush_registered`] reaches it. Holds only a
/// weak reference: dropped writers fall out of the registry.
pub fn register_for_flush(w: &Arc<Mutex<JsonlWriter>>) {
    registry().lock().unwrap().push(Arc::downgrade(w));
}

/// Flushes every live registered writer. Called by the CLI's typed
/// `exit()` on **every** path, so a nonzero exit can no longer truncate a
/// buffered JSONL tail. Poisoned or unreachable writers are skipped —
/// flushing is best-effort by design on the way out of the process.
pub fn flush_registered() {
    let mut reg = registry().lock().unwrap();
    reg.retain(|weak| match weak.upgrade() {
        Some(sink) => {
            if let Ok(mut w) = sink.lock() {
                let _ = w.flush();
            }
            true
        }
        None => false,
    });
}

// -------------------------------------------------------------- shards --

/// Streaming statistics from a finalized sharded sink — all
/// deterministic, so tests can pin them across `--jobs` widths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Records merged into the final stream.
    pub records: u64,
    /// Shard files the records passed through.
    pub shards: u64,
}

/// A per-worker sharded JSONL sink: workers append `(key, line)` records
/// to private shard files; [`ShardedSink::merge_into`] replays them in
/// global key order. Keys must be monotonically increasing **within each
/// shard** (the pool's atomic work cursor guarantees this when the key is
/// the item index).
#[derive(Debug)]
pub struct ShardedSink {
    shards: Vec<Mutex<JsonlWriter>>,
    paths: Vec<String>,
    next: AtomicUsize,
    records: AtomicU64,
}

impl ShardedSink {
    /// Creates `shards` shard files named `{base}.shard{k}`.
    pub fn create(base: &str, shards: usize) -> std::io::Result<Self> {
        let shards = shards.max(1);
        let paths: Vec<String> = (0..shards).map(|k| format!("{base}.shard{k}")).collect();
        let writers = paths
            .iter()
            .map(|p| JsonlWriter::create(p).map(Mutex::new))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self {
            shards: writers,
            paths,
            next: AtomicUsize::new(0),
            records: AtomicU64::new(0),
        })
    }

    /// Claims a shard for one worker (call from the pool's per-worker
    /// init). Panics if claimed more times than shards exist.
    pub fn claim(&self) -> usize {
        let k = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(k < self.shards.len(), "more workers than shards");
        k
    }

    /// Appends one keyed record to shard `k`. The key is stored as a
    /// line prefix and stripped again by the merge.
    pub fn write(&self, k: usize, key: u64, line: &str) {
        let mut w = self.shards[k].lock().unwrap();
        w.write_line(&format!("{key}\t{line}"))
            .unwrap_or_else(|e| panic!("stream shard {}: {e}", w.path()));
        self.records.fetch_add(1, Ordering::Relaxed);
    }

    /// K-way-merges the shard files into `out` in ascending key order,
    /// then deletes them. Each shard is read line-by-line, so peak memory
    /// is O(shards), not O(records).
    pub fn merge_into(self, out: &mut JsonlWriter) -> std::io::Result<StreamStats> {
        for shard in &self.shards {
            shard.lock().unwrap().flush()?;
        }
        let mut heads: Vec<ShardCursor> = Vec::new();
        for path in &self.paths {
            let mut lines = BufReader::new(File::open(path)?).lines();
            let head = next_keyed(&mut lines)?;
            heads.push((head, lines));
        }
        let mut records = 0u64;
        loop {
            // Linear min-scan over at most `jobs` heads.
            let mut best: Option<usize> = None;
            for (i, (head, _)) in heads.iter().enumerate() {
                if let Some((key, _)) = head {
                    if best.is_none_or(|b| *key < heads[b].0.as_ref().unwrap().0) {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let (head, lines) = &mut heads[i];
            let (_, line) = head.take().unwrap();
            out.write_line(&line)?;
            records += 1;
            *head = next_keyed(lines)?;
        }
        out.flush()?;
        for path in &self.paths {
            let _ = std::fs::remove_file(path);
        }
        Ok(StreamStats {
            records,
            shards: self.paths.len() as u64,
        })
    }
}

/// One shard's merge cursor: the buffered head record and the rest of the
/// shard's lines.
type ShardCursor = (Option<(u64, String)>, std::io::Lines<BufReader<File>>);

fn next_keyed(
    lines: &mut std::io::Lines<BufReader<File>>,
) -> std::io::Result<Option<(u64, String)>> {
    let Some(line) = lines.next() else {
        return Ok(None);
    };
    let line = line?;
    let (key, rest) = line
        .split_once('\t')
        .ok_or_else(|| std::io::Error::other("shard line missing key prefix"))?;
    let key = key
        .parse::<u64>()
        .map_err(|e| std::io::Error::other(format!("bad shard key: {e}")))?;
    Ok(Some((key, rest.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("easeio-stream-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn sharded_sink_merges_in_key_order() {
        let base = tmp("merge");
        let sink = ShardedSink::create(&base, 3).unwrap();
        // Worker-order writes: keys interleaved across shards but
        // monotone within each.
        let a = sink.claim();
        let b = sink.claim();
        let c = sink.claim();
        sink.write(b, 1, r#"{"device":1}"#);
        sink.write(a, 0, r#"{"device":0}"#);
        sink.write(c, 2, r#"{"device":2}"#);
        sink.write(b, 4, r#"{"device":4}"#);
        sink.write(a, 3, r#"{"device":3}"#);
        let out_path = format!("{base}.jsonl");
        let mut out = JsonlWriter::create(&out_path).unwrap();
        let stats = sink.merge_into(&mut out).unwrap();
        assert_eq!(
            stats,
            StreamStats {
                records: 5,
                shards: 3
            }
        );
        let text = std::fs::read_to_string(&out_path).unwrap();
        let devices: Vec<&str> = text.lines().collect();
        assert_eq!(
            devices,
            vec![
                r#"{"device":0}"#,
                r#"{"device":1}"#,
                r#"{"device":2}"#,
                r#"{"device":3}"#,
                r#"{"device":4}"#,
            ]
        );
        // Shards are cleaned up.
        for k in 0..3 {
            assert!(!std::path::Path::new(&format!("{base}.shard{k}")).exists());
        }
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn flush_registry_drains_buffered_tails() {
        // Regression (ISSUE 10 satellite): a buffered JSONL line written
        // shortly before a nonzero exit must reach the file once the
        // typed exit path calls `flush_registered`.
        let path = tmp("flush.jsonl");
        let w = JsonlWriter::create_registered(&path).unwrap();
        w.lock()
            .unwrap()
            .write_line(r#"{"phase":"devices","done":1}"#)
            .unwrap();
        // BufWriter holds the line; the file is still empty.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        flush_registered();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"phase\":\"devices\",\"done\":1}\n"
        );
        drop(w);
        // Dropped writers fall out of the registry on the next sweep.
        flush_registered();
        let _ = std::fs::remove_file(&path);
    }
}
