//! Bounded ring buffer of trace events.
//!
//! A long experiment sweep would allocate unboundedly with a plain `Vec`;
//! the ring instead keeps the most recent `capacity` events and counts how
//! many older ones were overwritten, so exporters can state exactly what was
//! dropped instead of silently truncating.

use crate::event::Event;

/// Default ring capacity (events). At ~48 bytes per event this bounds a
/// recorder at a few tens of megabytes, far above any single simulated run.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A fixed-capacity recorder that keeps the newest events.
#[derive(Debug)]
pub struct RingRecorder {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Creates a recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            buf: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest if full.
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the recorder, returning events oldest-first.
    pub fn take(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, InstantKind};

    fn ev(ts: u64) -> Event {
        Event::instant(ts, 0, InstantKind::Boot, "boot")
    }

    #[test]
    fn keeps_everything_below_capacity() {
        let mut r = RingRecorder::new(4);
        for t in 0..3 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 0);
        let got: Vec<u64> = r.take().iter().map(|e| e.ts_us).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn wraps_keeping_the_newest_and_counting_drops() {
        let mut r = RingRecorder::new(3);
        for t in 0..7 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 4);
        assert_eq!(r.len(), 3);
        let got: Vec<u64> = r.take().iter().map(|e| e.ts_us).collect();
        assert_eq!(got, vec![4, 5, 6], "oldest-first, newest retained");
    }

    #[test]
    fn take_resets_for_reuse() {
        let mut r = RingRecorder::new(2);
        for t in 0..5 {
            r.push(ev(t));
        }
        r.take();
        r.push(ev(9));
        let got: Vec<u64> = r.take().iter().map(|e| e.ts_us).collect();
        assert_eq!(got, vec![9]);
    }

    #[test]
    fn capacity_one_ring_always_holds_only_the_newest() {
        // Degenerate wraparound: every push past the first overwrites the
        // single slot, and the head must stay pinned at index 0.
        let mut r = RingRecorder::new(1);
        r.push(ev(0));
        assert_eq!(r.dropped(), 0);
        for t in 1..=5 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 5);
        let got: Vec<u64> = r.take().iter().map(|e| e.ts_us).collect();
        assert_eq!(got, vec![5]);
    }

    #[test]
    fn overflow_by_exact_multiples_of_capacity_stays_ordered() {
        // Pushing k·capacity events lands the head back at 0; the drain
        // must still come out oldest-first with an exact drop count.
        let mut r = RingRecorder::new(4);
        for t in 0..12 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 8);
        let got: Vec<u64> = r.take().iter().map(|e| e.ts_us).collect();
        assert_eq!(got, vec![8, 9, 10, 11]);
    }

    #[test]
    fn dropped_count_survives_take_and_keeps_accumulating() {
        // `dropped` is a run-lifetime ledger, not a per-drain one: the
        // exporters report total loss, so a drain must not reset it.
        let mut r = RingRecorder::new(2);
        for t in 0..5 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 3);
        r.take();
        assert_eq!(r.dropped(), 3);
        for t in 0..3 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 4);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = RingRecorder::new(0);
    }
}
