//! Energy-attribution metrics report: where every microjoule went.
//!
//! The MCU substrate attributes each unit of spent energy to one cause
//! category (forward progress, re-executed compute, redundant I/O, commit
//! overhead, retry backoff, DMA privatization, runtime misc, OTA update
//! staging). This module
//! is the report layer over that ledger: a versioned `kind: "metrics"`
//! document under the shared [`Report`] envelope,
//! one entry per runtime × app, each carrying the full per-category
//! time/energy breakdown, per-task rows, and per-site redundant-energy
//! rows.
//!
//! This crate sits below `mcu-emu` and cannot name its `EnergyCause` enum,
//! so the category vocabulary is pinned here as [`CATEGORY_NAMES`] — the
//! order must match `EnergyCause::ALL` exactly (the cross-crate agreement
//! is asserted by a test in the workspace's `tests/observability.rs`). The
//! validator enforces the attribution invariant *structurally*: a document
//! whose categories do not sum to its totals is rejected as malformed, not
//! merely suspicious.
//!
//! [`compare_metrics`] diffs two such documents and reports regressions
//! beyond a percentage gate; it backs `easeio-sim compare`, the CI gate
//! against the committed `BENCH_baseline.json`.

use crate::envelope::{Report, ReportBody};
use crate::json::Value;

/// Number of attribution categories.
pub const CATEGORY_COUNT: usize = 8;

/// Category names, in ledger order. Must match `EnergyCause::ALL` in
/// `mcu-emu` (index-for-index); documents carry the list so readers never
/// have to guess the order.
pub const CATEGORY_NAMES: [&str; CATEGORY_COUNT] = [
    "progress",
    "reexec_compute",
    "redundant_io",
    "commit",
    "retry",
    "dma_priv",
    "runtime_misc",
    "update_stage",
];

/// The subset of [`CATEGORY_NAMES`] counted as waste: energy a
/// continuously-powered run would not have spent.
pub const WASTE_CATEGORY_NAMES: [&str; 3] = ["reexec_compute", "redundant_io", "retry"];

/// Whether category index `i` is a waste category.
fn is_waste_index(i: usize) -> bool {
    WASTE_CATEGORY_NAMES.contains(&CATEGORY_NAMES[i])
}

/// Per-task slice of the attribution ledger.
#[derive(Debug, Clone)]
pub struct TaskWasteRow {
    /// Task id (`u16::MAX` = kernel-context spends outside any task).
    pub task: u16,
    /// Energy by category, aligned to [`CATEGORY_NAMES`].
    pub energy_nj: [u64; CATEGORY_COUNT],
}

/// Energy wasted on redundant re-execution at one call site.
#[derive(Debug, Clone)]
pub struct SiteWasteRow {
    /// Call-site id (I/O site or DMA site — see `dma`).
    pub site: u16,
    /// Whether the site is a DMA burst site rather than an I/O site.
    pub dma: bool,
    /// Energy the redundant re-executions cost (nJ).
    pub energy_nj: u64,
}

/// One runtime × app measurement: the full attribution ledger of a run.
#[derive(Debug, Clone)]
pub struct MetricsEntry {
    /// Kernel runtime name (`"easeio"`, `"alpaca"`, `"ink"`, `"naive"`).
    pub runtime: String,
    /// Application name.
    pub app: String,
    /// Run outcome label (`"completed"`, `"out-of-budget"`, …).
    pub outcome: String,
    /// Whether the run's observable output matched the golden run.
    pub correct: bool,
    /// Power-failure reboots survived.
    pub reboots: u64,
    /// Total powered time (µs).
    pub total_time_us: u64,
    /// Total energy spent (nJ).
    pub total_energy_nj: u64,
    /// Time by category, aligned to [`CATEGORY_NAMES`].
    pub cause_time_us: [u64; CATEGORY_COUNT],
    /// Energy by category, aligned to [`CATEGORY_NAMES`].
    pub cause_energy_nj: [u64; CATEGORY_COUNT],
    /// Per-task rows (ledger order; together they cover every nanojoule).
    pub tasks: Vec<TaskWasteRow>,
    /// Per-site redundant-energy rows.
    pub redundant_sites: Vec<SiteWasteRow>,
}

impl MetricsEntry {
    /// Total wasted energy: the sum of the waste categories.
    pub fn waste_nj(&self) -> u64 {
        (0..CATEGORY_COUNT)
            .filter(|&i| is_waste_index(i))
            .map(|i| self.cause_energy_nj[i])
            .sum()
    }
}

/// An app the metrics harness could not measure, with the reason stated
/// explicitly — skipped apps appear in the document rather than silently
/// vanishing from `entries`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedApp {
    /// Application name.
    pub app: String,
    /// Why it was not measured.
    pub reason: String,
}

/// Inputs to the metrics report document.
#[derive(Debug, Clone)]
pub struct MetricsInputs {
    /// Environment seed the runs were measured under.
    pub seed: u64,
    /// One entry per runtime × app, in measurement order.
    pub entries: Vec<MetricsEntry>,
    /// Apps excluded from measurement, with reasons (rendered only when
    /// non-empty, so documents without skips are unchanged).
    pub skipped: Vec<SkippedApp>,
}

fn pct(part: u64, whole: u64) -> Value {
    if whole == 0 {
        Value::Num(0.0)
    } else {
        Value::Num((part as f64 / whole as f64 * 1000.0).round() / 10.0)
    }
}

impl ReportBody for MetricsInputs {
    const KIND: &'static str = "metrics";
    const TOOL: &'static str = "easeio-sim metrics";

    fn body(&self) -> Value {
        let entries: Vec<Value> = self.entries.iter().map(render_entry).collect();
        let mut fields = vec![
            ("seed".into(), Value::u64(self.seed)),
            (
                "categories".into(),
                Value::Arr(CATEGORY_NAMES.iter().map(|n| Value::str(*n)).collect()),
            ),
            (
                "waste_categories".into(),
                Value::Arr(
                    WASTE_CATEGORY_NAMES
                        .iter()
                        .map(|n| Value::str(*n))
                        .collect(),
                ),
            ),
            ("entries".into(), Value::Arr(entries)),
        ];
        if !self.skipped.is_empty() {
            let rows = self
                .skipped
                .iter()
                .map(|s| {
                    Value::Obj(vec![
                        ("app".into(), Value::str(&s.app)),
                        ("reason".into(), Value::str(&s.reason)),
                    ])
                })
                .collect();
            fields.push(("skipped".into(), Value::Arr(rows)));
        }
        Value::Obj(fields)
    }

    fn validate_body(body: &Value) -> Vec<String> {
        validate_metrics_body(body)
    }
}

fn render_entry(e: &MetricsEntry) -> Value {
    let breakdown: Vec<(String, Value)> = (0..CATEGORY_COUNT)
        .map(|i| {
            (
                CATEGORY_NAMES[i].to_string(),
                Value::Obj(vec![
                    ("time_us".into(), Value::u64(e.cause_time_us[i])),
                    ("energy_nj".into(), Value::u64(e.cause_energy_nj[i])),
                    (
                        "energy_pct".into(),
                        pct(e.cause_energy_nj[i], e.total_energy_nj),
                    ),
                ]),
            )
        })
        .collect();
    let waste = e.waste_nj();
    let tasks: Vec<Value> = e
        .tasks
        .iter()
        .map(|t| {
            let by_cause: Vec<(String, Value)> = (0..CATEGORY_COUNT)
                .map(|i| (CATEGORY_NAMES[i].to_string(), Value::u64(t.energy_nj[i])))
                .collect();
            let task_waste: u64 = (0..CATEGORY_COUNT)
                .filter(|&i| is_waste_index(i))
                .map(|i| t.energy_nj[i])
                .sum();
            Value::Obj(vec![
                ("task".into(), Value::u64(t.task as u64)),
                ("energy_nj".into(), Value::Obj(by_cause)),
                ("waste_nj".into(), Value::u64(task_waste)),
            ])
        })
        .collect();
    let sites: Vec<Value> = e
        .redundant_sites
        .iter()
        .map(|s| {
            Value::Obj(vec![
                ("site".into(), Value::u64(s.site as u64)),
                ("dma".into(), Value::Bool(s.dma)),
                ("energy_nj".into(), Value::u64(s.energy_nj)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("runtime".into(), Value::str(&e.runtime)),
        ("app".into(), Value::str(&e.app)),
        ("outcome".into(), Value::str(&e.outcome)),
        ("correct".into(), Value::Bool(e.correct)),
        ("reboots".into(), Value::u64(e.reboots)),
        ("total_time_us".into(), Value::u64(e.total_time_us)),
        ("total_energy_nj".into(), Value::u64(e.total_energy_nj)),
        ("breakdown".into(), Value::Obj(breakdown)),
        ("waste_nj".into(), Value::u64(waste)),
        ("waste_pct".into(), pct(waste, e.total_energy_nj)),
        ("tasks".into(), Value::Arr(tasks)),
        ("redundant_sites".into(), Value::Arr(sites)),
    ])
}

/// Builds the full versioned metrics report document.
pub fn build_metrics_report(inp: &MetricsInputs) -> Value {
    Report::new(inp.clone()).to_value()
}

/// Validates a parsed metrics report document (envelope and body).
pub fn validate_metrics_report(v: &Value) -> Result<(), Vec<String>> {
    Report::<MetricsInputs>::validate(v)
}

/// Body-level validation, including the attribution invariant: every
/// entry's category breakdown must sum exactly to its totals (energy and
/// time), its waste total must equal the sum of the waste categories, and
/// its per-task rows together must cover the full energy total.
fn validate_metrics_body(v: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if v.get("seed").and_then(Value::as_u64).is_none() {
        errs.push("'seed' must be an unsigned integer".into());
    }
    match v.get("categories").and_then(Value::as_arr) {
        Some(cats) => {
            let names: Vec<&str> = cats.iter().filter_map(Value::as_str).collect();
            if names != CATEGORY_NAMES {
                errs.push(format!(
                    "'categories' must be exactly {CATEGORY_NAMES:?}, got {names:?}"
                ));
            }
        }
        None => errs.push("'categories' must be an array".into()),
    }
    // `skipped` is optional, but when present every row must say which app
    // was skipped and why — an unexplained skip is exactly the silent
    // omission the section exists to prevent.
    if let Some(skipped) = v.get("skipped") {
        match skipped.as_arr() {
            None => errs.push("'skipped' must be an array".into()),
            Some(rows) => {
                for (i, row) in rows.iter().enumerate() {
                    for key in ["app", "reason"] {
                        match row.get(key).and_then(Value::as_str) {
                            Some(s) if !s.is_empty() => {}
                            _ => errs
                                .push(format!("'skipped[{i}].{key}' must be a non-empty string")),
                        }
                    }
                }
            }
        }
    }
    let entries = match v.get("entries").and_then(Value::as_arr) {
        Some(e) => e,
        None => {
            errs.push("'entries' must be an array".into());
            return errs;
        }
    };
    for (idx, entry) in entries.iter().enumerate() {
        validate_entry(entry, idx, &mut errs);
    }
    errs
}

fn validate_entry(entry: &Value, idx: usize, errs: &mut Vec<String>) {
    let at = |field: &str| format!("entries[{idx}].{field}");
    for key in ["runtime", "app", "outcome"] {
        if entry.get(key).and_then(Value::as_str).is_none() {
            errs.push(format!("'{}' must be a string", at(key)));
        }
    }
    if !matches!(entry.get("correct"), Some(Value::Bool(_))) {
        errs.push(format!("'{}' must be a boolean", at("correct")));
    }
    for key in ["reboots", "total_time_us", "total_energy_nj", "waste_nj"] {
        if entry.get(key).and_then(Value::as_u64).is_none() {
            errs.push(format!("'{}' must be an unsigned integer", at(key)));
        }
    }
    let total_energy = entry
        .get("total_energy_nj")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let total_time = entry
        .get("total_time_us")
        .and_then(Value::as_u64)
        .unwrap_or(0);

    let mut energy_sum = 0u64;
    let mut time_sum = 0u64;
    let mut waste_sum = 0u64;
    match entry.get("breakdown").and_then(Value::as_obj) {
        None => errs.push(format!("'{}' must be an object", at("breakdown"))),
        Some(breakdown) => {
            let keys: Vec<&str> = breakdown.iter().map(|(k, _)| k.as_str()).collect();
            if keys != CATEGORY_NAMES {
                errs.push(format!(
                    "'{}' keys must be exactly {CATEGORY_NAMES:?}",
                    at("breakdown")
                ));
            }
            for (name, cell) in breakdown {
                let e = cell.get("energy_nj").and_then(Value::as_u64);
                let t = cell.get("time_us").and_then(Value::as_u64);
                match (e, t) {
                    (Some(e), Some(t)) => {
                        energy_sum += e;
                        time_sum += t;
                        if WASTE_CATEGORY_NAMES.contains(&name.as_str()) {
                            waste_sum += e;
                        }
                    }
                    _ => errs.push(format!(
                        "'{}.{name}' must carry integer time_us and energy_nj",
                        at("breakdown")
                    )),
                }
            }
            if energy_sum != total_energy {
                errs.push(format!(
                    "'{}': categories sum to {energy_sum} nJ but total_energy_nj \
                     is {total_energy} (attribution invariant violated)",
                    at("breakdown")
                ));
            }
            if time_sum != total_time {
                errs.push(format!(
                    "'{}': categories sum to {time_sum} µs but total_time_us \
                     is {total_time} (attribution invariant violated)",
                    at("breakdown")
                ));
            }
            if entry
                .get("waste_nj")
                .and_then(Value::as_u64)
                .is_some_and(|w| w != waste_sum)
            {
                errs.push(format!(
                    "'{}' must equal the waste-category sum {waste_sum}",
                    at("waste_nj")
                ));
            }
        }
    }

    match entry.get("tasks").and_then(Value::as_arr) {
        None => errs.push(format!("'{}' must be an array", at("tasks"))),
        Some(tasks) => {
            let mut task_total = 0u64;
            for (ti, row) in tasks.iter().enumerate() {
                if row.get("task").and_then(Value::as_u64).is_none() {
                    errs.push(format!("'{}[{ti}].task' must be an integer", at("tasks")));
                }
                match row.get("energy_nj").and_then(Value::as_obj) {
                    None => errs.push(format!(
                        "'{}[{ti}].energy_nj' must be an object",
                        at("tasks")
                    )),
                    Some(cells) => {
                        for (name, n) in cells {
                            match n.as_u64() {
                                Some(n) => task_total += n,
                                None => errs.push(format!(
                                    "'{}[{ti}].energy_nj.{name}' must be an integer",
                                    at("tasks")
                                )),
                            }
                        }
                    }
                }
            }
            if task_total != total_energy {
                errs.push(format!(
                    "'{}': per-task rows sum to {task_total} nJ but total_energy_nj \
                     is {total_energy} (task ledger must cover every nanojoule)",
                    at("tasks")
                ));
            }
        }
    }

    match entry.get("redundant_sites").and_then(Value::as_arr) {
        None => errs.push(format!("'{}' must be an array", at("redundant_sites"))),
        Some(sites) => {
            for (si, row) in sites.iter().enumerate() {
                if row.get("site").and_then(Value::as_u64).is_none()
                    || row.get("energy_nj").and_then(Value::as_u64).is_none()
                    || !matches!(row.get("dma"), Some(Value::Bool(_)))
                {
                    errs.push(format!(
                        "'{}[{si}]' must carry integer site, boolean dma, \
                         integer energy_nj",
                        at("redundant_sites")
                    ));
                }
            }
        }
    }
}

/// Renders the breakdown as nested flamegraph JSON — `{name, value,
/// children}` with runtime → app → category levels, `value` in nJ — the
/// format d3-flamegraph and speedscope both import.
pub fn flamegraph(inp: &MetricsInputs) -> Value {
    let mut runtime_names: Vec<&str> = Vec::new();
    for e in &inp.entries {
        if !runtime_names.contains(&e.runtime.as_str()) {
            runtime_names.push(&e.runtime);
        }
    }
    let mut total = 0u64;
    let runtimes: Vec<Value> = runtime_names
        .iter()
        .map(|rt| {
            let mut rt_total = 0u64;
            let apps: Vec<Value> = inp
                .entries
                .iter()
                .filter(|e| e.runtime == *rt)
                .map(|e| {
                    rt_total += e.total_energy_nj;
                    let cats: Vec<Value> = (0..CATEGORY_COUNT)
                        .filter(|&i| e.cause_energy_nj[i] > 0)
                        .map(|i| {
                            Value::Obj(vec![
                                ("name".into(), Value::str(CATEGORY_NAMES[i])),
                                ("value".into(), Value::u64(e.cause_energy_nj[i])),
                            ])
                        })
                        .collect();
                    Value::Obj(vec![
                        ("name".into(), Value::str(&e.app)),
                        ("value".into(), Value::u64(e.total_energy_nj)),
                        ("children".into(), Value::Arr(cats)),
                    ])
                })
                .collect();
            total += rt_total;
            Value::Obj(vec![
                ("name".into(), Value::str(*rt)),
                ("value".into(), Value::u64(rt_total)),
                ("children".into(), Value::Arr(apps)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("name".into(), Value::str("all")),
        ("value".into(), Value::u64(total)),
        ("children".into(), Value::Arr(runtimes)),
    ])
}

/// One gated metric that got worse between two metrics reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Runtime of the regressed entry.
    pub runtime: String,
    /// App of the regressed entry.
    pub app: String,
    /// Which gated metric regressed (`"waste_nj"`, `"total_energy_nj"`,
    /// `"total_time_us"`, or `"correct"`).
    pub metric: String,
    /// Baseline value.
    pub old: u64,
    /// New value.
    pub new: u64,
    /// Relative growth in percent (`+inf` when the baseline was 0).
    pub delta_pct: f64,
}

impl Regression {
    /// Human-readable one-liner for gate output.
    pub fn describe(&self) -> String {
        if self.metric == "correct" {
            format!(
                "{}/{}: output correctness regressed",
                self.runtime, self.app
            )
        } else {
            format!(
                "{}/{}: {} {} -> {} (+{:.1}%)",
                self.runtime, self.app, self.metric, self.old, self.new, self.delta_pct
            )
        }
    }
}

/// The per-entry metrics [`compare_metrics`] gates on.
const GATED_METRICS: [&str; 3] = ["waste_nj", "total_energy_nj", "total_time_us"];

/// Diffs two metrics report documents, returning every entry whose gated
/// metrics grew by more than `gate_pct` percent over the baseline (or
/// whose output correctness flipped to wrong, gated unconditionally).
///
/// Entries are matched by (runtime, app); an entry present in `old` but
/// missing from `new` is an error (the comparison is undefined), while new
/// entries absent from the baseline are ignored. `Err` carries
/// schema/shape problems; `Ok(vec![])` means the gate passes.
pub fn compare_metrics(
    old: &Value,
    new: &Value,
    gate_pct: f64,
) -> Result<Vec<Regression>, Vec<String>> {
    validate_metrics_report(old).map_err(|e| prefix_errs("OLD", e))?;
    validate_metrics_report(new).map_err(|e| prefix_errs("NEW", e))?;
    let old_entries = entry_index(old);
    let new_entries = entry_index(new);

    let mut errs = Vec::new();
    let mut regressions = Vec::new();
    for (key, old_e) in &old_entries {
        let Some(new_e) = new_entries.iter().find(|(k, _)| k == key).map(|(_, e)| e) else {
            errs.push(format!("entry {}/{} missing from NEW", key.0, key.1));
            continue;
        };
        let old_correct = old_e.get("correct").and_then(as_bool).unwrap_or(false);
        let new_correct = new_e.get("correct").and_then(as_bool).unwrap_or(false);
        if old_correct && !new_correct {
            regressions.push(Regression {
                runtime: key.0.clone(),
                app: key.1.clone(),
                metric: "correct".into(),
                old: 1,
                new: 0,
                delta_pct: f64::INFINITY,
            });
        }
        for metric in GATED_METRICS {
            let o = old_e.get(metric).and_then(Value::as_u64).unwrap_or(0);
            let n = new_e.get(metric).and_then(Value::as_u64).unwrap_or(0);
            if n <= o {
                continue;
            }
            let delta_pct = if o == 0 {
                f64::INFINITY
            } else {
                (n - o) as f64 / o as f64 * 100.0
            };
            if delta_pct > gate_pct {
                regressions.push(Regression {
                    runtime: key.0.clone(),
                    app: key.1.clone(),
                    metric: metric.into(),
                    old: o,
                    new: n,
                    delta_pct,
                });
            }
        }
    }
    if errs.is_empty() {
        Ok(regressions)
    } else {
        Err(errs)
    }
}

fn prefix_errs(which: &str, errs: Vec<String>) -> Vec<String> {
    errs.into_iter().map(|e| format!("{which}: {e}")).collect()
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// `(runtime, app) -> entry` pairs of a validated metrics document.
fn entry_index(doc: &Value) -> Vec<((String, String), &Value)> {
    doc.get("report")
        .and_then(|r| r.get("entries"))
        .and_then(Value::as_arr)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|e| {
                    let rt = e.get("runtime").and_then(Value::as_str)?;
                    let app = e.get("app").and_then(Value::as_str)?;
                    Some(((rt.to_string(), app.to_string()), e))
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{validate_any_report, ReportKind};

    fn entry(runtime: &str, app: &str, energy: [u64; CATEGORY_COUNT]) -> MetricsEntry {
        let total: u64 = energy.iter().sum();
        MetricsEntry {
            runtime: runtime.into(),
            app: app.into(),
            outcome: "completed".into(),
            correct: true,
            reboots: 3,
            total_time_us: total / 2,
            total_energy_nj: total,
            cause_time_us: energy.map(|e| e / 2),
            cause_energy_nj: energy,
            tasks: vec![TaskWasteRow {
                task: 0,
                energy_nj: energy,
            }],
            redundant_sites: vec![SiteWasteRow {
                site: 2,
                dma: false,
                energy_nj: energy[2],
            }],
        }
    }

    fn sample() -> MetricsInputs {
        MetricsInputs {
            seed: 7,
            entries: vec![
                entry("easeio", "dma", [100, 10, 4, 20, 2, 8, 6, 0]),
                entry("naive", "dma", [100, 40, 30, 0, 2, 0, 6, 0]),
            ],
            skipped: Vec::new(),
        }
    }

    #[test]
    fn skipped_rows_round_trip_and_require_reasons() {
        let mut inp = sample();
        inp.skipped.push(SkippedApp {
            app: "fir-long".into(),
            reason: "chunk task exceeds the timer supply's max on-period".into(),
        });
        let doc = build_metrics_report(&inp);
        let parsed = crate::json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(validate_any_report(&parsed), Ok(ReportKind::Metrics));
        let rows = parsed
            .get("report")
            .unwrap()
            .get("skipped")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(rows[0].get("app").unwrap().as_str(), Some("fir-long"));

        // An empty reason is rejected — that would be a silent skip again.
        let text = doc
            .to_pretty()
            .replace("chunk task exceeds the timer supply's max on-period", "");
        let errs = validate_metrics_report(&crate::json::parse(&text).unwrap()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("skipped[0].reason")),
            "{errs:?}"
        );

        // No skips ⇒ the key is absent entirely (documents unchanged).
        let clean = build_metrics_report(&sample());
        assert!(!clean.to_pretty().contains("skipped"));
    }

    #[test]
    fn round_trips_and_dispatches_as_metrics() {
        let doc = build_metrics_report(&sample());
        let text = doc.to_pretty();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(validate_any_report(&parsed), Ok(ReportKind::Metrics));
        let e0 = &parsed
            .get("report")
            .unwrap()
            .get("entries")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        assert_eq!(e0.get("waste_nj").unwrap().as_u64(), Some(16));
    }

    #[test]
    fn validator_rejects_breakdown_that_does_not_sum() {
        let mut inp = sample();
        inp.entries[0].total_energy_nj += 1;
        let doc = build_metrics_report(&inp);
        let errs = validate_metrics_report(&doc).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("attribution invariant")),
            "{errs:?}"
        );
    }

    #[test]
    fn validator_rejects_task_ledger_gaps() {
        let mut inp = sample();
        inp.entries[0].tasks[0].energy_nj[0] -= 1;
        let doc = build_metrics_report(&inp);
        let errs = validate_metrics_report(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("task ledger")), "{errs:?}");
    }

    #[test]
    fn flamegraph_nests_runtime_app_category() {
        let fg = flamegraph(&sample());
        assert_eq!(fg.get("name").unwrap().as_str(), Some("all"));
        let runtimes = fg.get("children").unwrap().as_arr().unwrap();
        assert_eq!(runtimes.len(), 2);
        let apps = runtimes[0].get("children").unwrap().as_arr().unwrap();
        assert_eq!(apps[0].get("name").unwrap().as_str(), Some("dma"));
        let cats = apps[0].get("children").unwrap().as_arr().unwrap();
        assert_eq!(cats[0].get("name").unwrap().as_str(), Some("progress"));
        assert_eq!(cats[0].get("value").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn compare_passes_within_gate_and_fails_beyond_it() {
        let old = build_metrics_report(&sample());
        let mut worse = sample();
        // +50% redundant-io waste on the naive entry.
        worse.entries[1].cause_energy_nj[2] += 15;
        worse.entries[1].total_energy_nj += 15;
        worse.entries[1].tasks[0].energy_nj[2] += 15;
        let new = build_metrics_report(&worse);
        assert!(compare_metrics(&old, &new, 50.0).unwrap().is_empty());
        let regs = compare_metrics(&old, &new, 5.0).unwrap();
        assert!(
            regs.iter()
                .any(|r| r.runtime == "naive" && r.metric == "waste_nj"),
            "{regs:?}"
        );
        // Identical reports always pass, even at gate 0.
        assert!(compare_metrics(&old, &old, 0.0).unwrap().is_empty());
    }

    #[test]
    fn compare_flags_correctness_flips_and_missing_entries() {
        let old = build_metrics_report(&sample());
        let mut flipped = sample();
        flipped.entries[0].correct = false;
        let new = build_metrics_report(&flipped);
        let regs = compare_metrics(&old, &new, 1000.0).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "correct");
        assert!(regs[0].describe().contains("correctness"));

        let mut shrunk = sample();
        shrunk.entries.pop();
        let new = build_metrics_report(&shrunk);
        let errs = compare_metrics(&old, &new, 5.0).unwrap_err();
        assert!(errs[0].contains("missing from NEW"), "{errs:?}");
    }
}
