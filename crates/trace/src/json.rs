//! Minimal JSON document model, writer, and parser.
//!
//! The workspace builds offline with no serialization dependency, so the
//! exporters carry their own small JSON layer. Numbers are kept as `f64`
//! (every value this crate emits fits exactly: timestamps and energies stay
//! below 2⁵³). Object key order is preserved, which keeps exported files
//! byte-stable for golden tests.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds a number from an unsigned integer.
    pub fn u64(n: u64) -> Value {
        Value::Num(n as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1)
            }),
            Value::Obj(pairs) => write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, level + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (level + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and message.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Value::Obj(vec![
            ("a".into(), Value::u64(42)),
            ("b".into(), Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("s".into(), Value::str("he said \"hi\"\n\tλ")),
            ("neg".into(), Value::Num(-1.5)),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::u64(1_000_000).to_compact(), "1000000");
        assert_eq!(Value::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"m": {"n": 7}, "l": [1, 2]}"#).unwrap();
        assert_eq!(
            v.get("m").and_then(|m| m.get("n")).and_then(Value::as_u64),
            Some(7)
        );
        assert_eq!(v.get("l").and_then(Value::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("absent"), None);
    }
}
