//! Recursive-descent parser for the EaseIO task language.

use crate::ast::*;
use crate::lexer::{lex, Spanned, Tok};
use crate::CompileError;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parses a program.
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

impl Parser {
    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.line)
            .unwrap_or(1)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), CompileError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected {tok:?}, found {other:?}"))
            }
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn int(&mut self) -> Result<i64, CompileError> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(n),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected integer, found {other:?}"))
            }
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut decls = Vec::new();
        let mut tasks = Vec::new();
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Ident(k) if k == "__nv" || k == "__lea" => {
                    decls.push(self.nv_decl()?);
                }
                Tok::Ident(k) if k == "task" || k == "Task" => {
                    tasks.push(self.task()?);
                }
                other => {
                    return self.err(format!(
                        "expected `__nv`, `__lea` or `task`, found {other:?}"
                    ))
                }
            }
        }
        if tasks.is_empty() {
            return self.err("program has no tasks");
        }
        Ok(Program { decls, tasks })
    }

    fn nv_decl(&mut self) -> Result<NvDecl, CompileError> {
        let line = self.line();
        let kw = self.ident()?; // __nv or __lea
        let region = if kw == "__lea" {
            DeclRegion::Lea
        } else {
            DeclRegion::Fram
        };
        // Optional C-style type keyword, per the paper's listings.
        if matches!(self.peek(), Some(Tok::Ident(k)) if k == "int" || k == "bool") {
            self.next();
        }
        let name = self.ident()?;
        let len = if self.eat(&Tok::LBracket) {
            let n = self.int()?;
            self.expect(Tok::RBracket)?;
            Some(n as u32)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        if region == DeclRegion::Lea && len.is_none() {
            return self.err("__lea declarations must be arrays");
        }
        Ok(NvDecl {
            name,
            len,
            region,
            line,
        })
    }

    fn task(&mut self) -> Result<Task, CompileError> {
        let line = self.line();
        self.ident()?; // task
        let name = self.ident()?;
        // Optional `()` after the task name, per the paper's listings.
        if self.eat(&Tok::LParen) {
            self.expect(Tok::RParen)?;
        }
        let body = self.block()?;
        Ok(Task { name, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().is_none() {
                return self.err("unexpected end of input inside a block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn sem(&mut self) -> Result<Sem, CompileError> {
        // Accept both bare identifiers and the paper's quoted strings.
        let word = match self.next() {
            Some(Tok::Ident(s)) => s,
            Some(Tok::Str(s)) => s,
            other => {
                self.pos = self.pos.saturating_sub(1);
                return self.err(format!("expected semantics, found {other:?}"));
            }
        };
        match word.as_str() {
            "Single" => Ok(Sem::Single),
            "Always" => Ok(Sem::Always),
            "Timely" => {
                self.expect(Tok::Comma)?;
                let ms = self.int()?;
                if ms <= 0 {
                    return self.err("Timely window must be positive");
                }
                Ok(Sem::Timely(ms as u64))
            }
            other => self.err(format!("unknown semantics {other:?}")),
        }
    }

    fn io_func(&mut self, name: &str) -> Result<IoFunc, CompileError> {
        Ok(match name {
            "Temp" => IoFunc::Temp,
            "Humd" => IoFunc::Humd,
            "Pres" => IoFunc::Pres,
            "Light" => IoFunc::Light,
            "Accel" => IoFunc::Accel,
            "Send" => IoFunc::Send,
            "Capture" => IoFunc::Capture,
            "Argmax" => IoFunc::Argmax,
            other => return self.err(format!("unknown I/O function {other:?}")),
        })
    }

    /// Parses `_call_IO(func, Sem[, window][, args…])`, cursor after the
    /// `_call_IO` identifier.
    fn call_io(&mut self) -> Result<IoCall, CompileError> {
        let line = self.line();
        self.expect(Tok::LParen)?;
        let fname = self.ident()?;
        // Optional `()` after the function name, per the paper (`Temp()`).
        if self.eat(&Tok::LParen) {
            self.expect(Tok::RParen)?;
        }
        let func = self.io_func(&fname)?;
        self.expect(Tok::Comma)?;
        let sem = self.sem()?;
        let mut args = Vec::new();
        while self.eat(&Tok::Comma) {
            args.push(self.expr()?);
        }
        self.expect(Tok::RParen)?;
        Ok(IoCall {
            func,
            sem,
            args,
            line,
            id: 0,
        })
    }

    fn arr_ref(&mut self) -> Result<ArrRef, CompileError> {
        let name = self.ident()?;
        self.expect(Tok::LBracket)?;
        let index = self.expr()?;
        self.expect(Tok::RBracket)?;
        Ok(ArrRef { name, index })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let Some(Tok::Ident(head)) = self.peek().cloned() else {
            return self.err("expected a statement");
        };
        match head.as_str() {
            "let" => {
                self.next();
                let name = self.ident()?;
                self.expect(Tok::Assign)?;
                let expr = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let { name, expr, line })
            }
            "compute" => {
                self.next();
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Compute(e, line))
            }
            "_call_IO" => {
                self.next();
                let call = self.call_io()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::CallIoStmt(call))
            }
            "_DMA_copy" => {
                self.next();
                self.expect(Tok::LParen)?;
                let src = self.arr_ref()?;
                self.expect(Tok::Comma)?;
                let dst = self.arr_ref()?;
                self.expect(Tok::Comma)?;
                let elems = self.int()? as u32;
                let exclude = if self.eat(&Tok::Comma) {
                    match self.next() {
                        Some(Tok::Ident(s)) | Some(Tok::Str(s)) if s == "Exclude" => true,
                        other => {
                            self.pos = self.pos.saturating_sub(1);
                            return self.err(format!("expected Exclude, found {other:?}"));
                        }
                    }
                } else {
                    false
                };
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                if elems == 0 {
                    return self.err("_DMA_copy of zero elements");
                }
                Ok(Stmt::DmaCopy {
                    src,
                    dst,
                    elems,
                    exclude,
                    line,
                    id: 0,
                })
            }
            "_IO_block_begin" => {
                self.next();
                self.expect(Tok::LParen)?;
                let sem = self.sem()?;
                self.expect(Tok::RParen)?;
                self.eat(&Tok::Semi);
                let mut body = Vec::new();
                loop {
                    match self.peek() {
                        Some(Tok::Ident(k)) if k == "_IO_block_end" => {
                            self.next();
                            self.eat(&Tok::Semi);
                            break;
                        }
                        Some(_) => body.push(self.stmt()?),
                        None => return self.err("missing _IO_block_end"),
                    }
                }
                Ok(Stmt::IoBlock { sem, body, line })
            }
            "_IO_block_end" => self.err("_IO_block_end without _IO_block_begin"),
            "if" => {
                self.next();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then = self.block()?;
                let els = if matches!(self.peek(), Some(Tok::Ident(k)) if k == "else") {
                    self.next();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    els,
                    line,
                })
            }
            "repeat" => {
                self.next();
                self.expect(Tok::LParen)?;
                let var = self.ident()?;
                self.expect(Tok::Comma)?;
                let count = self.int()? as u32;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                if count == 0 {
                    return self.err("repeat of zero iterations");
                }
                Ok(Stmt::Repeat {
                    var,
                    count,
                    body,
                    line,
                })
            }
            "lea_conv2d" => {
                self.next();
                self.expect(Tok::LParen)?;
                let input = self.ident()?;
                self.expect(Tok::Comma)?;
                let w = self.int()? as u32;
                self.expect(Tok::Comma)?;
                let h = self.int()? as u32;
                self.expect(Tok::Comma)?;
                let kernel = self.ident()?;
                self.expect(Tok::Comma)?;
                let kw = self.int()? as u32;
                self.expect(Tok::Comma)?;
                let kh = self.int()? as u32;
                self.expect(Tok::Comma)?;
                let out = self.ident()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                if w < kw || h < kh || kw == 0 || kh == 0 {
                    return self.err("lea_conv2d kernel must fit inside the input");
                }
                Ok(Stmt::LeaConv2d {
                    input,
                    w,
                    h,
                    kernel,
                    kw,
                    kh,
                    out,
                    line,
                    id: 0,
                })
            }
            "lea_relu" => {
                self.next();
                self.expect(Tok::LParen)?;
                let buf = self.ident()?;
                self.expect(Tok::Comma)?;
                let n = self.int()? as u32;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                if n == 0 {
                    return self.err("lea_relu over zero elements");
                }
                Ok(Stmt::LeaRelu {
                    buf,
                    n,
                    line,
                    id: 0,
                })
            }
            "lea_fc" => {
                self.next();
                self.expect(Tok::LParen)?;
                let x = self.ident()?;
                self.expect(Tok::Comma)?;
                let n_in = self.int()? as u32;
                self.expect(Tok::Comma)?;
                let weights = self.ident()?;
                self.expect(Tok::Comma)?;
                let out = self.ident()?;
                self.expect(Tok::Comma)?;
                let n_out = self.int()? as u32;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                if n_in == 0 || n_out == 0 {
                    return self.err("lea_fc needs positive dimensions");
                }
                Ok(Stmt::LeaFc {
                    x,
                    n_in,
                    weights,
                    out,
                    n_out,
                    line,
                    id: 0,
                })
            }
            "lea_fir" => {
                self.next();
                self.expect(Tok::LParen)?;
                let x = self.ident()?;
                self.expect(Tok::Comma)?;
                let h = self.ident()?;
                self.expect(Tok::Comma)?;
                let y = self.ident()?;
                self.expect(Tok::Comma)?;
                let n_out = self.int()? as u32;
                self.expect(Tok::Comma)?;
                let taps = self.int()? as u32;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                if n_out == 0 || taps == 0 {
                    return self.err("lea_fir needs positive n_out and taps");
                }
                Ok(Stmt::LeaFir {
                    x,
                    h,
                    y,
                    n_out,
                    taps,
                    line,
                    id: 0,
                })
            }
            "next" => {
                self.next();
                let t = self.ident()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Next(t, line))
            }
            "done" => {
                self.next();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Done(line))
            }
            _ => {
                // Assignment: `name = e;` or `name[i] = e;`
                let name = self.ident()?;
                if self.eat(&Tok::LBracket) {
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    self.expect(Tok::Assign)?;
                    let expr = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::AssignIndex {
                        name,
                        index,
                        expr,
                        line,
                    })
                } else {
                    self.expect(Tok::Assign)?;
                    let expr = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Assign { name, expr, line })
                }
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Op::Eq,
            Some(Tok::Ne) => Op::Ne,
            Some(Tok::Lt) => Op::Lt,
            Some(Tok::Le) => Op::Le,
            Some(Tok::Gt) => Op::Gt,
            Some(Tok::Ge) => Op::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.additive()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => Op::Add,
                Some(Tok::Minus) => Op::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => Op::Mul,
                Some(Tok::Slash) => Op::Div,
                Some(Tok::Percent) => Op::Rem,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.atom()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn atom(&mut self) -> Result<Expr, CompileError> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(Expr::Int(n)),
            Some(Tok::Minus) => {
                let e = self.atom()?;
                Ok(Expr::Bin(Op::Sub, Box::new(Expr::Int(0)), Box::new(e)))
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "_call_IO" => {
                let call = self.call_io()?;
                Ok(Expr::CallIo(Box::new(call)))
            }
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LBracket) {
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_fig3_style_task() {
        let src = r#"
            __nv int temp_out;
            task sense {
                _IO_block_begin(Single);
                let t = _call_IO(Temp, Timely, 10);
                let h = _call_IO(Humd, Always);
                _IO_block_end;
                temp_out = t + h;
                done;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.decls.len(), 1);
        assert_eq!(p.tasks.len(), 1);
        let body = &p.tasks[0].body;
        assert!(
            matches!(&body[0], Stmt::IoBlock { sem: Sem::Single, body, .. } if body.len() == 2)
        );
        assert!(matches!(&body[1], Stmt::Assign { name, .. } if name == "temp_out"));
        assert!(matches!(&body[2], Stmt::Done(_)));
    }

    #[test]
    fn parses_quoted_semantics_like_the_paper() {
        let src = r#"
            task t {
                let x = _call_IO(Pres(), "Single");
                let y = _call_IO(Temp(), "Timely", 50);
                done;
            }
        "#;
        let p = parse(src).unwrap();
        let body = &p.tasks[0].body;
        match &body[0] {
            Stmt::Let {
                expr: Expr::CallIo(c),
                ..
            } => assert_eq!(c.sem, Sem::Single),
            other => panic!("{other:?}"),
        }
        match &body[1] {
            Stmt::Let {
                expr: Expr::CallIo(c),
                ..
            } => assert_eq!(c.sem, Sem::Timely(50)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_dma_and_control_flow() {
        let src = r#"
            __nv int a[8];
            __nv int b[8];
            __nv int flag;
            task t {
                _DMA_copy(a[0], b[2], 4);
                _DMA_copy(a[0], b[0], 4, Exclude);
                if (flag < 10) { flag = flag + 1; } else { flag = 0; }
                repeat (i, 3) { b[i] = i * 2; }
                next t;
            }
        "#;
        let p = parse(src).unwrap();
        let body = &p.tasks[0].body;
        assert!(matches!(
            &body[0],
            Stmt::DmaCopy {
                exclude: false,
                elems: 4,
                ..
            }
        ));
        assert!(matches!(&body[1], Stmt::DmaCopy { exclude: true, .. }));
        assert!(matches!(&body[2], Stmt::If { .. }));
        assert!(matches!(&body[3], Stmt::Repeat { count: 3, .. }));
        assert!(matches!(&body[4], Stmt::Next(t, _) if t == "t"));
    }

    #[test]
    fn operator_precedence() {
        let src = "task t { let x = 1 + 2 * 3 < 10; done; }";
        let p = parse(src).unwrap();
        match &p.tasks[0].body[0] {
            Stmt::Let { expr, .. } => {
                // (1 + (2*3)) < 10
                assert_eq!(
                    *expr,
                    Expr::Bin(
                        Op::Lt,
                        Box::new(Expr::Bin(
                            Op::Add,
                            Box::new(Expr::Int(1)),
                            Box::new(Expr::Bin(
                                Op::Mul,
                                Box::new(Expr::Int(2)),
                                Box::new(Expr::Int(3))
                            ))
                        )),
                        Box::new(Expr::Int(10))
                    )
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let src = "task t {\n  let x = ;\n}";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unbalanced_block_end_is_rejected() {
        assert!(parse("task t { _IO_block_end; done; }").is_err());
        assert!(parse("task t { _IO_block_begin(Single); done; ").is_err());
    }

    #[test]
    fn nested_io_blocks_parse() {
        let src = r#"
            task t {
                _IO_block_begin(Single);
                _IO_block_begin("Timely", 10);
                let p = _call_IO(Pres, Single);
                _IO_block_end;
                let x = _call_IO(Temp, Timely, 50);
                _IO_block_end;
                done;
            }
        "#;
        let p = parse(src).unwrap();
        match &p.tasks[0].body[0] {
            Stmt::IoBlock {
                sem: Sem::Single,
                body,
                ..
            } => {
                assert!(matches!(
                    &body[0],
                    Stmt::IoBlock {
                        sem: Sem::Timely(10),
                        ..
                    }
                ));
                assert!(matches!(&body[1], Stmt::Let { .. }));
            }
            other => panic!("{other:?}"),
        }
    }
}
