//! Lowering: compiles an analyzed program into a runnable [`kernel::App`].
//!
//! Each task body becomes a closure interpreting the AST against the
//! [`TaskCtx`]: expression evaluation over `i64`, `__nv` accesses through
//! the runtime's privatization hooks, and — the point of the front-end —
//! `_call_IO`/`_DMA_copy` invocations that automatically carry the inferred
//! dependence sets. Dynamic call-site indices are mapped back to analysis
//! node ids per attempt, so dependencies survive conditional control flow.
//!
//! [`TaskCtx`]: kernel::TaskCtx

use crate::analyze::Analysis;
use crate::ast::*;
use crate::CompileError;
use kernel::{
    App, DmaAnnotation, Fault, Inventory, IoOp, ReexecSemantics, TaskCtx, TaskDef, TaskId,
    TaskResult, Transition,
};
use mcu_emu::{Mcu, NvBuf, NvVar, Region};
use periph::Sensor;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A compiled program: the app plus handles for inspection.
#[derive(Debug)]
pub struct Compiled {
    /// The runnable application.
    pub app: App,
    /// `__nv` scalar handles by name.
    pub vars: HashMap<String, NvVar<i32>>,
    /// `__nv`/`__lea` array handles by name (i16 elements, like the LEA's
    /// native width).
    pub arrays: HashMap<String, NvBuf<i16>>,
}

/// Control flow out of a statement list.
enum Flow {
    Continue,
    Goto(Transition),
}

struct Interp {
    program: Program,
    analysis: Analysis,
    vars: HashMap<String, NvVar<i32>>,
    arrays: HashMap<String, NvBuf<i16>>,
    task_ids: HashMap<String, TaskId>,
}

/// Per-attempt execution state.
#[derive(Default)]
struct Frame {
    locals: HashMap<String, i64>,
    /// Analysis node id → dynamic call-site index, this attempt.
    site_of: HashMap<u32, u16>,
}

/// Lowers an analyzed program onto `mcu`.
pub fn lower(
    program: &Program,
    analysis: &Analysis,
    mcu: &mut Mcu,
) -> Result<Compiled, CompileError> {
    let mut vars = HashMap::new();
    let mut arrays = HashMap::new();
    for d in &program.decls {
        let region = match d.region {
            DeclRegion::Fram => Region::Fram,
            DeclRegion::Lea => Region::LeaRam,
        };
        match d.len {
            None => {
                vars.insert(
                    d.name.clone(),
                    NvVar::<i32>::alloc(&mut mcu.mem, Region::Fram),
                );
            }
            Some(n) => {
                arrays.insert(d.name.clone(), NvBuf::<i16>::alloc(&mut mcu.mem, region, n));
            }
        }
    }
    let task_ids: HashMap<String, TaskId> = program
        .tasks
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name.clone(), TaskId(i as u16)))
        .collect();

    let interp = Rc::new(Interp {
        program: program.clone(),
        analysis: analysis.clone(),
        vars: vars.clone(),
        arrays: arrays.clone(),
        task_ids,
    });

    let mut tasks = Vec::new();
    for (i, t) in program.tasks.iter().enumerate() {
        let interp = Rc::clone(&interp);
        // Task names live as long as the program; leak one copy so TaskDef's
        // &'static str is satisfied without changing the kernel API.
        let name: &'static str = Box::leak(t.name.clone().into_boxed_str());
        let body = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
            let frame = RefCell::new(Frame::default());
            let stmts = interp.program.tasks[i].body.clone();
            match interp.exec_stmts(ctx, &frame, &stmts)? {
                Flow::Goto(t) => Ok(t),
                Flow::Continue => unreachable!("analysis guarantees termination"),
            }
        };
        tasks.push(TaskDef {
            name,
            body: Rc::new(body),
        });
    }

    let inventory = Inventory {
        tasks: program.tasks.len() as u32,
        io_funcs: analysis
            .lock_names
            .values()
            .map(|l| l.split('_').nth(1).unwrap_or("").to_string())
            .collect::<std::collections::BTreeSet<_>>()
            .len() as u32,
        io_sites: analysis.io_sites,
        timely_sites: analysis.timely_sites,
        dma_sites: analysis.dma_sites_per_task.values().sum(),
        io_blocks: analysis.io_blocks,
        nv_vars: program.decls.len() as u32,
    };
    Ok(Compiled {
        app: App {
            name: "easec",
            tasks,
            entry: TaskId(0),
            inventory,
            verify: None,
        },
        vars,
        arrays,
    })
}

impl Interp {
    fn eval(&self, ctx: &mut TaskCtx<'_>, frame: &RefCell<Frame>, e: &Expr) -> Result<i64, Fault> {
        match e {
            Expr::Int(n) => Ok(*n),
            Expr::Var(name) => {
                if let Some(v) = frame.borrow().locals.get(name) {
                    return Ok(*v);
                }
                let var = self.vars[name];
                Ok(ctx.read(var)? as i64)
            }
            Expr::Index(name, idx) => {
                let i = self.eval(ctx, frame, idx)?;
                let arr = self.arrays[name];
                let i = self.bounds(i, arr.len(), name);
                Ok(ctx.buf_read(arr, i)? as i64)
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval(ctx, frame, l)?;
                let b = self.eval(ctx, frame, r)?;
                Ok(match op {
                    Op::Add => a.wrapping_add(b),
                    Op::Sub => a.wrapping_sub(b),
                    Op::Mul => a.wrapping_mul(b),
                    Op::Div => a.checked_div(b).unwrap_or(0),
                    Op::Rem => a.checked_rem(b).unwrap_or(0),
                    Op::Eq => (a == b) as i64,
                    Op::Ne => (a != b) as i64,
                    Op::Lt => (a < b) as i64,
                    Op::Le => (a <= b) as i64,
                    Op::Gt => (a > b) as i64,
                    Op::Ge => (a >= b) as i64,
                })
            }
            Expr::CallIo(call) => self.call_io(ctx, frame, call),
        }
    }

    fn bounds(&self, i: i64, len: u32, name: &str) -> u32 {
        assert!(
            i >= 0 && (i as u32) < len,
            "index {i} out of bounds for __nv {name}[{len}]"
        );
        i as u32
    }

    fn sem(&self, s: Sem) -> ReexecSemantics {
        match s {
            Sem::Single => ReexecSemantics::Single,
            Sem::Timely(ms) => ReexecSemantics::timely_ms(ms),
            Sem::Always => ReexecSemantics::Always,
        }
    }

    fn call_io(
        &self,
        ctx: &mut TaskCtx<'_>,
        frame: &RefCell<Frame>,
        call: &IoCall,
    ) -> Result<i64, Fault> {
        let op = match call.func {
            IoFunc::Temp => IoOp::Sense(Sensor::Temp),
            IoFunc::Humd => IoOp::Sense(Sensor::Humd),
            IoFunc::Pres => IoOp::Sense(Sensor::Pres),
            IoFunc::Light => IoOp::Sense(Sensor::Light),
            IoFunc::Accel => IoOp::Sense(Sensor::Accel),
            IoFunc::Send => {
                // Evaluate payload arguments (may themselves contain calls).
                let mut payload = Vec::new();
                for a in &call.args {
                    payload.push(self.eval(ctx, frame, a)? as i32);
                }
                IoOp::Send { payload }
            }
            IoFunc::Capture => {
                // Analysis validated: (array, w, h, seed) with constants.
                let (Expr::Var(name), Expr::Int(w), Expr::Int(h), Expr::Int(seed)) =
                    (&call.args[0], &call.args[1], &call.args[2], &call.args[3])
                else {
                    unreachable!("validated by analysis")
                };
                IoOp::Capture {
                    dst: self.arrays[name].addr(),
                    width: *w as u32,
                    height: *h as u32,
                    seed: *seed as u64,
                }
            }
            IoFunc::Argmax => {
                let (Expr::Var(name), Expr::Int(n)) = (&call.args[0], &call.args[1]) else {
                    unreachable!("validated by analysis")
                };
                IoOp::LeaArgmax {
                    buf: self.arrays[name].addr(),
                    n: *n as u32,
                }
            }
        };
        // Translate analysis node ids into this attempt's dynamic sites.
        let deps: Vec<u16> = self.analysis.io_deps[&call.id]
            .iter()
            .filter_map(|d| frame.borrow().site_of.get(d).copied())
            .collect();
        let site = ctx.next_io_site();
        let v = ctx.call_io_dep(op, self.sem(call.sem), &deps)?;
        frame.borrow_mut().site_of.insert(call.id, site);
        Ok(v as i64)
    }

    /// Runs a LEA statement as an `Always` I/O site with inferred deps.
    fn lea_stmt(
        &self,
        ctx: &mut TaskCtx<'_>,
        frame: &RefCell<Frame>,
        op: IoOp,
        id: u32,
    ) -> Result<(), Fault> {
        let deps: Vec<u16> = self.analysis.io_deps[&id]
            .iter()
            .filter_map(|d| frame.borrow().site_of.get(d).copied())
            .collect();
        let site = ctx.next_io_site();
        ctx.call_io_dep(op, ReexecSemantics::Always, &deps)?;
        frame.borrow_mut().site_of.insert(id, site);
        Ok(())
    }

    fn exec_stmts(
        &self,
        ctx: &mut TaskCtx<'_>,
        frame: &RefCell<Frame>,
        stmts: &[Stmt],
    ) -> Result<Flow, Fault> {
        for s in stmts {
            match self.exec_stmt(ctx, frame, s)? {
                Flow::Continue => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_stmt(
        &self,
        ctx: &mut TaskCtx<'_>,
        frame: &RefCell<Frame>,
        s: &Stmt,
    ) -> Result<Flow, Fault> {
        match s {
            Stmt::Let { name, expr, .. } => {
                let v = self.eval(ctx, frame, expr)?;
                frame.borrow_mut().locals.insert(name.clone(), v);
                Ok(Flow::Continue)
            }
            Stmt::Assign { name, expr, .. } => {
                let v = self.eval(ctx, frame, expr)?;
                if frame.borrow().locals.contains_key(name) {
                    frame.borrow_mut().locals.insert(name.clone(), v);
                } else {
                    ctx.write(self.vars[name], v as i32)?;
                }
                Ok(Flow::Continue)
            }
            Stmt::AssignIndex {
                name, index, expr, ..
            } => {
                let i = self.eval(ctx, frame, index)?;
                let v = self.eval(ctx, frame, expr)?;
                let arr = self.arrays[name];
                let i = self.bounds(i, arr.len(), name);
                ctx.buf_write(arr, i, v as i16)?;
                Ok(Flow::Continue)
            }
            Stmt::Compute(e, _) => {
                let cycles = self.eval(ctx, frame, e)?.max(0) as u64;
                ctx.compute(cycles)?;
                Ok(Flow::Continue)
            }
            Stmt::CallIoStmt(call) => {
                self.call_io(ctx, frame, call)?;
                Ok(Flow::Continue)
            }
            Stmt::DmaCopy {
                src,
                dst,
                elems,
                exclude,
                id,
                ..
            } => {
                let si = self.eval(ctx, frame, &src.index)?;
                let di = self.eval(ctx, frame, &dst.index)?;
                let sa = self.arrays[&src.name];
                let da = self.arrays[&dst.name];
                let si = self.bounds(si, sa.len() - elems + 1, &src.name);
                let di = self.bounds(di, da.len() - elems + 1, &dst.name);
                let ann = if *exclude {
                    DmaAnnotation::Exclude
                } else {
                    DmaAnnotation::Auto
                };
                let related: Vec<u16> = self.analysis.dma_related[id]
                    .iter()
                    .filter_map(|d| frame.borrow().site_of.get(d).copied())
                    .collect();
                ctx.dma_copy_annotated(
                    sa.addr().add(si * 2),
                    da.addr().add(di * 2),
                    elems * 2,
                    ann,
                    &related,
                )?;
                Ok(Flow::Continue)
            }
            Stmt::IoBlock { sem, body, .. } => {
                let stmts = body.clone();
                ctx.io_block(self.sem(*sem), |ctx| {
                    match self.exec_stmts(ctx, frame, &stmts)? {
                        Flow::Continue => Ok(()),
                        Flow::Goto(_) => unreachable!("analysis forbids transitions in blocks"),
                    }
                })?;
                Ok(Flow::Continue)
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                let c = self.eval(ctx, frame, cond)?;
                if c != 0 {
                    self.exec_stmts(ctx, frame, then)
                } else {
                    self.exec_stmts(ctx, frame, els)
                }
            }
            Stmt::Repeat {
                var, count, body, ..
            } => {
                for i in 0..*count {
                    frame.borrow_mut().locals.insert(var.clone(), i as i64);
                    match self.exec_stmts(ctx, frame, body)? {
                        Flow::Continue => {}
                        flow => return Ok(flow),
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::LeaConv2d {
                input,
                w,
                h,
                kernel,
                kw,
                kh,
                out,
                id,
                ..
            } => {
                let op = IoOp::LeaConv2d {
                    input: self.arrays[input].addr(),
                    w: *w,
                    h: *h,
                    kernel: self.arrays[kernel].addr(),
                    kw: *kw,
                    kh: *kh,
                    out: self.arrays[out].addr(),
                };
                self.lea_stmt(ctx, frame, op, *id)?;
                Ok(Flow::Continue)
            }
            Stmt::LeaRelu { buf, n, id, .. } => {
                let op = IoOp::LeaRelu {
                    buf: self.arrays[buf].addr(),
                    n: *n,
                };
                self.lea_stmt(ctx, frame, op, *id)?;
                Ok(Flow::Continue)
            }
            Stmt::LeaFc {
                x,
                n_in,
                weights,
                out,
                n_out,
                id,
                ..
            } => {
                let op = IoOp::LeaFc {
                    x: self.arrays[x].addr(),
                    n_in: *n_in,
                    weights: self.arrays[weights].addr(),
                    out: self.arrays[out].addr(),
                    n_out: *n_out,
                };
                self.lea_stmt(ctx, frame, op, *id)?;
                Ok(Flow::Continue)
            }
            Stmt::LeaFir {
                x,
                h,
                y,
                n_out,
                taps,
                id,
                ..
            } => {
                let xa = self.arrays[x];
                let ha = self.arrays[h];
                let ya = self.arrays[y];
                let deps: Vec<u16> = self.analysis.io_deps[id]
                    .iter()
                    .filter_map(|d| frame.borrow().site_of.get(d).copied())
                    .collect();
                let site = ctx.next_io_site();
                ctx.call_io_dep(
                    IoOp::LeaFir {
                        x: xa.addr(),
                        h: ha.addr(),
                        y: ya.addr(),
                        n_out: *n_out,
                        taps: *taps,
                    },
                    ReexecSemantics::Always,
                    &deps,
                )?;
                frame.borrow_mut().site_of.insert(*id, site);
                Ok(Flow::Continue)
            }
            Stmt::Next(target, _) => Ok(Flow::Goto(Transition::To(self.task_ids[target]))),
            Stmt::Done(_) => Ok(Flow::Goto(Transition::Done)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use mcu_emu::Supply;

    fn run_continuous(src: &str) -> (Mcu, periph::Peripherals, Compiled) {
        let mut mcu = Mcu::new(Supply::continuous());
        let compiled = compile(src, &mut mcu).unwrap();
        let mut p = periph::Peripherals::new(9);
        let mut rt = kernel::naive::NaiveRuntime::new();
        let r = kernel::run_app(
            &compiled.app,
            &mut rt,
            &mut mcu,
            &mut p,
            &kernel::ExecConfig::default(),
        );
        assert_eq!(r.outcome, kernel::Outcome::Completed);
        (mcu, p, compiled)
    }

    #[test]
    fn arithmetic_and_nv_state() {
        let (mcu, _, c) = run_continuous(
            r#"
            __nv int x;
            __nv int arr[4];
            task t {
                let a = 2 + 3 * 4;
                x = a - 1;
                arr[2] = x * 2;
                arr[3] = arr[2] + 1;
                done;
            }
        "#,
        );
        assert_eq!(c.vars["x"].get(&mcu.mem), 13);
        assert_eq!(c.arrays["arr"].get(&mcu.mem, 2), 26);
        assert_eq!(c.arrays["arr"].get(&mcu.mem, 3), 27);
    }

    #[test]
    fn task_chain_and_loops() {
        let (mcu, _, c) = run_continuous(
            r#"
            __nv int sum;
            __nv int rounds;
            task first {
                repeat (i, 5) { sum = sum + i; }
                next second;
            }
            task second {
                rounds = rounds + 1;
                if (rounds < 3) { next first; } else { done; }
            }
        "#,
        );
        assert_eq!(c.vars["rounds"].get(&mcu.mem), 3);
        assert_eq!(c.vars["sum"].get(&mcu.mem), 30); // 10 per round × 3
    }

    #[test]
    fn sensors_and_send() {
        let (mcu, p, c) = run_continuous(
            r#"
            __nv int reading;
            task t {
                reading = _call_IO(Temp, Single);
                _call_IO(Send, Single, reading, 7);
                done;
            }
        "#,
        );
        assert_eq!(p.radio.count(), 1);
        let pkt = &p.radio.packets()[0];
        assert_eq!(pkt.payload[0], c.vars["reading"].get(&mcu.mem));
        assert_eq!(pkt.payload[1], 7);
    }

    #[test]
    fn dma_moves_array_data() {
        let (mcu, _, c) = run_continuous(
            r#"
            __nv int a[6];
            __nv int b[6];
            task t {
                a[0] = 10;
                a[1] = 20;
                a[2] = 30;
                _DMA_copy(a[0], b[2], 3);
                done;
            }
        "#,
        );
        assert_eq!(c.arrays["b"].get(&mcu.mem, 2), 10);
        assert_eq!(c.arrays["b"].get(&mcu.mem, 3), 20);
        assert_eq!(c.arrays["b"].get(&mcu.mem, 4), 30);
    }

    #[test]
    fn inventory_reflects_the_analysis() {
        let mut mcu = Mcu::new(Supply::continuous());
        let c = compile(
            r#"
            __nv int a[4];
            __nv int b[4];
            task t {
                _IO_block_begin(Single);
                let x = _call_IO(Temp, Timely, 10);
                let y = _call_IO(Humd, Always);
                _IO_block_end;
                _DMA_copy(a[0], b[0], 2);
                _call_IO(Send, Single, x, y);
                done;
            }
        "#,
            &mut mcu,
        )
        .unwrap();
        let inv = c.app.inventory;
        assert_eq!(inv.tasks, 1);
        assert_eq!(inv.io_sites, 3);
        assert_eq!(inv.dma_sites, 1);
        assert_eq!(inv.io_blocks, 1);
        assert_eq!(inv.io_funcs, 3); // Temp, Humd, Send
    }
}
