//! Pretty-printer for the task language: AST → canonical source.
//!
//! `parse(print(ast)) == ast` (modulo analysis ids), which gives the
//! front-end a round-trip property test and tooling a way to emit
//! machine-generated programs.

use crate::ast::*;

/// Prints a program as parseable source.
pub fn print_source(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        let kw = match d.region {
            DeclRegion::Fram => "__nv",
            DeclRegion::Lea => "__lea",
        };
        match d.len {
            Some(n) => out.push_str(&format!("{kw} int {}[{}];\n", d.name, n)),
            None => out.push_str(&format!("{kw} int {};\n", d.name)),
        }
    }
    for t in &p.tasks {
        out.push_str(&format!("task {} {{\n", t.name));
        print_stmts(&mut out, &t.body, 1);
        out.push_str("}\n");
    }
    out
}

fn ind(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn sem_src(s: Sem) -> String {
    match s {
        Sem::Single => "Single".into(),
        Sem::Always => "Always".into(),
        Sem::Timely(ms) => format!("Timely, {ms}"),
    }
}

fn call_src(c: &IoCall) -> String {
    let mut s = format!("_call_IO({}, {}", c.func.name(), sem_src(c.sem));
    for a in &c.args {
        s.push_str(&format!(", {}", expr_src(a)));
    }
    s.push(')');
    s
}

/// Prints an expression (parenthesized to be precedence-safe).
pub fn expr_src(e: &Expr) -> String {
    match e {
        Expr::Int(n) => {
            if *n < 0 {
                format!("(0 - {})", -n)
            } else {
                n.to_string()
            }
        }
        Expr::Var(v) => v.clone(),
        Expr::Index(a, i) => format!("{a}[{}]", expr_src(i)),
        Expr::Bin(op, l, r) => {
            let o = match op {
                Op::Add => "+",
                Op::Sub => "-",
                Op::Mul => "*",
                Op::Div => "/",
                Op::Rem => "%",
                Op::Eq => "==",
                Op::Ne => "!=",
                Op::Lt => "<",
                Op::Le => "<=",
                Op::Gt => ">",
                Op::Ge => ">=",
            };
            format!("({} {o} {})", expr_src(l), expr_src(r))
        }
        Expr::CallIo(c) => call_src(c),
    }
}

fn print_stmts(out: &mut String, stmts: &[Stmt], depth: usize) {
    for s in stmts {
        print_stmt(out, s, depth);
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    ind(out, depth);
    match s {
        Stmt::Let { name, expr, .. } => {
            out.push_str(&format!("let {name} = {};\n", expr_src(expr)))
        }
        Stmt::Assign { name, expr, .. } => out.push_str(&format!("{name} = {};\n", expr_src(expr))),
        Stmt::AssignIndex {
            name, index, expr, ..
        } => out.push_str(&format!(
            "{name}[{}] = {};\n",
            expr_src(index),
            expr_src(expr)
        )),
        Stmt::Compute(e, _) => out.push_str(&format!("compute({});\n", expr_src(e))),
        Stmt::CallIoStmt(c) => out.push_str(&format!("{};\n", call_src(c))),
        Stmt::DmaCopy {
            src,
            dst,
            elems,
            exclude,
            ..
        } => {
            let ex = if *exclude { ", Exclude" } else { "" };
            out.push_str(&format!(
                "_DMA_copy({}[{}], {}[{}], {elems}{ex});\n",
                src.name,
                expr_src(&src.index),
                dst.name,
                expr_src(&dst.index)
            ));
        }
        Stmt::IoBlock { sem, body, .. } => {
            out.push_str(&format!("_IO_block_begin({});\n", sem_src(*sem)));
            print_stmts(out, body, depth + 1);
            ind(out, depth);
            out.push_str("_IO_block_end;\n");
        }
        Stmt::If {
            cond, then, els, ..
        } => {
            out.push_str(&format!("if ({}) {{\n", expr_src(cond)));
            print_stmts(out, then, depth + 1);
            ind(out, depth);
            if els.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                print_stmts(out, els, depth + 1);
                ind(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::Repeat {
            var, count, body, ..
        } => {
            out.push_str(&format!("repeat ({var}, {count}) {{\n"));
            print_stmts(out, body, depth + 1);
            ind(out, depth);
            out.push_str("}\n");
        }
        Stmt::LeaFir {
            x,
            h,
            y,
            n_out,
            taps,
            ..
        } => out.push_str(&format!("lea_fir({x}, {h}, {y}, {n_out}, {taps});\n")),
        Stmt::LeaConv2d {
            input,
            w,
            h,
            kernel,
            kw,
            kh,
            out: o,
            ..
        } => out.push_str(&format!(
            "lea_conv2d({input}, {w}, {h}, {kernel}, {kw}, {kh}, {o});\n"
        )),
        Stmt::LeaRelu { buf, n, .. } => out.push_str(&format!("lea_relu({buf}, {n});\n")),
        Stmt::LeaFc {
            x,
            n_in,
            weights,
            out: o,
            n_out,
            ..
        } => out.push_str(&format!("lea_fc({x}, {n_in}, {weights}, {o}, {n_out});\n")),
        Stmt::Next(t, _) => out.push_str(&format!("next {t};\n")),
        Stmt::Done(_) => out.push_str("done;\n"),
    }
}

/// Structural equality ignoring source lines and analysis ids.
pub fn ast_eq(a: &Program, b: &Program) -> bool {
    fn norm(p: &Program) -> Program {
        let mut p = p.clone();
        for d in &mut p.decls {
            d.line = 0;
        }
        for t in &mut p.tasks {
            t.line = 0;
            norm_stmts(&mut t.body);
        }
        p
    }
    fn norm_expr(e: &mut Expr) {
        match e {
            Expr::Bin(_, l, r) => {
                norm_expr(l);
                norm_expr(r);
            }
            Expr::Index(_, i) => norm_expr(i),
            Expr::CallIo(c) => {
                c.line = 0;
                c.id = 0;
                for a in &mut c.args {
                    norm_expr(a);
                }
            }
            _ => {}
        }
    }
    fn norm_stmts(stmts: &mut [Stmt]) {
        for s in stmts {
            match s {
                Stmt::Let { expr, line, .. } | Stmt::Assign { expr, line, .. } => {
                    *line = 0;
                    norm_expr(expr);
                }
                Stmt::AssignIndex {
                    index, expr, line, ..
                } => {
                    *line = 0;
                    norm_expr(index);
                    norm_expr(expr);
                }
                Stmt::Compute(e, line) => {
                    *line = 0;
                    norm_expr(e);
                }
                Stmt::CallIoStmt(c) => {
                    c.line = 0;
                    c.id = 0;
                    for a in &mut c.args {
                        norm_expr(a);
                    }
                }
                Stmt::DmaCopy {
                    src, dst, line, id, ..
                } => {
                    *line = 0;
                    *id = 0;
                    norm_expr(&mut src.index);
                    norm_expr(&mut dst.index);
                }
                Stmt::IoBlock { body, line, .. } => {
                    *line = 0;
                    norm_stmts(body);
                }
                Stmt::If {
                    cond,
                    then,
                    els,
                    line,
                } => {
                    *line = 0;
                    norm_expr(cond);
                    norm_stmts(then);
                    norm_stmts(els);
                }
                Stmt::Repeat { body, line, .. } => {
                    *line = 0;
                    norm_stmts(body);
                }
                Stmt::LeaFir { line, id, .. }
                | Stmt::LeaConv2d { line, id, .. }
                | Stmt::LeaRelu { line, id, .. }
                | Stmt::LeaFc { line, id, .. } => {
                    *line = 0;
                    *id = 0;
                }
                Stmt::Next(_, line) | Stmt::Done(line) => *line = 0,
            }
        }
    }
    norm(a) == norm(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn simple_round_trip() {
        let src = r#"
            __nv int x;
            __nv int arr[8];
            task a {
                let v = _call_IO(Temp, Timely, 10);
                x = v * 2 + arr[3];
                arr[0] = 0 - 5;
                _DMA_copy(arr[0], arr[4], 2, Exclude);
                _IO_block_begin(Single);
                let h = _call_IO(Humd, Always);
                _IO_block_end;
                if (x < 0) { next b; } else { done; }
            }
            task b {
                repeat (i, 3) { arr[i] = i; }
                _call_IO(Send, Single, x, arr[0]);
                done;
            }
        "#;
        let p1 = parse(src).unwrap();
        let printed = print_source(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert!(ast_eq(&p1, &p2), "round-trip mismatch:\n{printed}");
    }

    #[test]
    fn negative_literals_survive() {
        let src = "task t { let a = 0 - 42; done; }";
        let p1 = parse(src).unwrap();
        let p2 = parse(&print_source(&p1)).unwrap();
        assert!(ast_eq(&p1, &p2));
    }
}
