//! Abstract syntax of the EaseIO task language.
//!
//! The surface syntax mirrors the paper's listings: `__nv` declarations,
//! tasks, `_call_IO(func, Semantics, args…)`, `_IO_block_begin/_IO_block_end`
//! (parsed into a properly nested block), `_DMA_copy(src[i], dst[j], n)`,
//! `if`/`else`, `repeat`, `next task;` and `done;`.

/// Re-execution semantics annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sem {
    /// Execute at most once per activation.
    Single,
    /// Re-execute when older than the window (milliseconds).
    Timely(u64),
    /// Re-execute after every reboot.
    Always,
}

/// An I/O function the language can invoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFunc {
    /// Temperature sensor.
    Temp,
    /// Humidity sensor.
    Humd,
    /// Pressure sensor.
    Pres,
    /// Light sensor.
    Light,
    /// Accelerometer magnitude.
    Accel,
    /// Radio transmission of the argument values.
    Send,
    /// Image capture into a `__nv` array: `_call_IO(Capture, Single, img,
    /// w, h, seed)`; returns a scene checksum.
    Capture,
    /// LEA argmax over a `__lea` array: `_call_IO(Argmax, Always, buf, n)`;
    /// returns the winning index (the paper's inference layer).
    Argmax,
}

impl IoFunc {
    /// The function's name as written in source.
    pub fn name(self) -> &'static str {
        match self {
            IoFunc::Temp => "Temp",
            IoFunc::Humd => "Humd",
            IoFunc::Pres => "Pres",
            IoFunc::Light => "Light",
            IoFunc::Accel => "Accel",
            IoFunc::Send => "Send",
            IoFunc::Capture => "Capture",
            IoFunc::Argmax => "Argmax",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A `_call_IO` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct IoCall {
    /// The invoked I/O function.
    pub func: IoFunc,
    /// Annotated semantics.
    pub sem: Sem,
    /// Arguments (payload for `Send`; sensors take none).
    pub args: Vec<Expr>,
    /// Source line.
    pub line: u32,
    /// Node id assigned by semantic analysis (0 before analysis).
    pub id: u32,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Local or `__nv` scalar read.
    Var(String),
    /// `__nv` array element read.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(Op, Box<Expr>, Box<Expr>),
    /// `_call_IO(...)` used as a value.
    CallIo(Box<IoCall>),
}

/// An array element reference used as a DMA operand.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrRef {
    /// Array name.
    pub name: String,
    /// Element offset expression.
    pub index: Expr,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = expr;` — task-local (volatile) binding.
    Let {
        /// Binding name.
        name: String,
        /// Initializer.
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// `name = expr;` — assignment to a local or `__nv` scalar.
    Assign {
        /// Target name.
        name: String,
        /// Value.
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// `name[idx] = expr;` — `__nv` array element store.
    AssignIndex {
        /// Array name.
        name: String,
        /// Element offset.
        index: Expr,
        /// Value.
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// `compute(cycles);`
    Compute(Expr, u32),
    /// A `_call_IO` whose value is discarded (e.g. `Send`).
    CallIoStmt(IoCall),
    /// `_DMA_copy(src[i], dst[j], elems);`
    DmaCopy {
        /// Source reference.
        src: ArrRef,
        /// Destination reference.
        dst: ArrRef,
        /// Element count (constant).
        elems: u32,
        /// `Exclude` annotation present.
        exclude: bool,
        /// Source line.
        line: u32,
        /// Node id assigned by semantic analysis (0 before analysis).
        id: u32,
    },
    /// `_IO_block_begin(S); … _IO_block_end;` parsed as a nested block.
    IoBlock {
        /// Block semantics.
        sem: Sem,
        /// Statements inside the block.
        body: Vec<Stmt>,
        /// Source line of the begin.
        line: u32,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `repeat (i, N) { … }` — N constant iterations binding local `i`.
    Repeat {
        /// Loop-variable name.
        var: String,
        /// Iteration count.
        count: u32,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `lea_conv2d(input, w, h, kernel, kw, kh, out);` — LEA valid 2-D
    /// convolution over `__lea` arrays (`Always`).
    LeaConv2d {
        /// Input image array.
        input: String,
        /// Image width.
        w: u32,
        /// Image height.
        h: u32,
        /// Kernel array.
        kernel: String,
        /// Kernel width.
        kw: u32,
        /// Kernel height.
        kh: u32,
        /// Output array.
        out: String,
        /// Source line.
        line: u32,
        /// Node id assigned by semantic analysis.
        id: u32,
    },
    /// `lea_relu(buf, n);` — in-place LEA ReLU (`Always`).
    LeaRelu {
        /// Buffer array.
        buf: String,
        /// Element count.
        n: u32,
        /// Source line.
        line: u32,
        /// Node id assigned by semantic analysis.
        id: u32,
    },
    /// `lea_fc(x, n_in, weights, out, n_out);` — LEA fully-connected layer
    /// (`Always`).
    LeaFc {
        /// Input vector array.
        x: String,
        /// Input length.
        n_in: u32,
        /// Row-major weights array.
        weights: String,
        /// Output vector array.
        out: String,
        /// Output length.
        n_out: u32,
        /// Source line.
        line: u32,
        /// Node id assigned by semantic analysis.
        id: u32,
    },
    /// `lea_fir(x, h, y, n_out, taps);` — run the LEA FIR accelerator over
    /// `__lea` arrays (an `Always` peripheral operation, like the paper's
    /// LEA workloads).
    LeaFir {
        /// Input array (`__lea`, at least `n_out + taps - 1` elements).
        x: String,
        /// Coefficient array (`__lea`, at least `taps` elements).
        h: String,
        /// Output array (`__lea`, at least `n_out` elements).
        y: String,
        /// Output length.
        n_out: u32,
        /// Tap count.
        taps: u32,
        /// Source line.
        line: u32,
        /// Node id assigned by semantic analysis.
        id: u32,
    },
    /// `next task;` — commit and transfer control.
    Next(String, u32),
    /// `done;` — commit and finish the application.
    Done(u32),
}

/// Memory placement of a declared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclRegion {
    /// Non-volatile FRAM (`__nv`).
    Fram,
    /// Volatile LEA-RAM (`__lea`) — required for `lea_fir` operands,
    /// cleared at every power failure.
    Lea,
}

/// A `__nv`/`__lea` declaration: scalar (`len == None`) or array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvDecl {
    /// Variable name.
    pub name: String,
    /// Array length, if an array.
    pub len: Option<u32>,
    /// Placement (scalars are always FRAM).
    pub region: DeclRegion,
    /// Source line.
    pub line: u32,
}

/// A task definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task name.
    pub name: String,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A whole program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Non-volatile declarations.
    pub decls: Vec<NvDecl>,
    /// Tasks, in declaration order; the first is the entry task.
    pub tasks: Vec<Task>,
}
