//! Tokenizer for the EaseIO task language.

use crate::CompileError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal contents (the paper quotes semantics: `"Single"`).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenizes `source`; `//` comments run to end of line.
pub fn lex(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push(Spanned {
                        tok: Tok::Slash,
                        line,
                    });
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(CompileError {
                                line,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n * 10 + v as i64;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Int(n),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            _ => {
                chars.next();
                let two = |chars: &mut std::iter::Peekable<std::str::Chars>, next: char| {
                    if chars.peek() == Some(&next) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let tok = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '%' => Tok::Percent,
                    '=' => {
                        if two(&mut chars, '=') {
                            Tok::Eq
                        } else {
                            Tok::Assign
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=') {
                            Tok::Ne
                        } else {
                            return Err(CompileError {
                                line,
                                msg: "unexpected '!'".into(),
                            });
                        }
                    }
                    '<' => {
                        if two(&mut chars, '=') {
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '=') {
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    other => {
                        return Err(CompileError {
                            line,
                            msg: format!("unexpected character {other:?}"),
                        })
                    }
                };
                out.push(Spanned { tok, line });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("x = _call_IO(Temp, Timely, 10);"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("_call_IO".into()),
                Tok::LParen,
                Tok::Ident("Temp".into()),
                Tok::Comma,
                Tok::Ident("Timely".into()),
                Tok::Comma,
                Tok::Int(10),
                Tok::RParen,
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn strings_and_comparisons() {
        assert_eq!(
            toks(r#"if (t < 10) { } // brr"#),
            vec![
                Tok::Ident("if".into()),
                Tok::LParen,
                Tok::Ident("t".into()),
                Tok::Lt,
                Tok::Int(10),
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
            ]
        );
        assert_eq!(toks(r#""Single""#), vec![Tok::Str("Single".into())]);
        assert_eq!(
            toks("a == b != c <= d >= e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Ident("b".into()),
                Tok::Ne,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Ge,
                Tok::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let spanned = lex("a\nb\n  c").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 3);
    }

    #[test]
    fn comment_to_eol() {
        assert_eq!(
            toks("a // b c d\ne"),
            vec![Tok::Ident("a".into()), Tok::Ident("e".into())]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn bare_bang_is_an_error() {
        assert!(lex("!x").is_err());
    }
}
