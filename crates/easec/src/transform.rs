//! Source-to-source transformation printer (paper §4.5, Figure 5).
//!
//! Emits the C the original front-end would generate: one lock flag,
//! private output copy, and (for `Timely`) timestamp per `_call_IO` site,
//! with the `if` control structures of Figure 5; block flags with their
//! time checks; and `depend_flg` tests wired from the inferred data
//! dependencies. This is a documentation artifact — execution uses the same
//! decisions through the runtime — and doubles as a readable record of what
//! the analysis concluded.

use crate::analyze::Analysis;
use crate::ast::*;

/// Pretty-prints the transformed program.
pub fn transform(program: &Program, analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("// Transformed by easec (EaseIO front-end, paper Fig. 5).\n");
    for d in &program.decls {
        let kw = match d.region {
            DeclRegion::Fram => "__nv",
            DeclRegion::Lea => "__lea",
        };
        match d.len {
            Some(n) => out.push_str(&format!("{kw} int {}[{}];\n", d.name, n)),
            None => out.push_str(&format!("{kw} int {};\n", d.name)),
        }
    }
    // Control-block declarations for every call site.
    let mut ids: Vec<&u32> = analysis.lock_names.keys().collect();
    ids.sort();
    for id in ids {
        let lock = &analysis.lock_names[id];
        out.push_str(&format!("__nv bool {lock};\n"));
        out.push_str(&format!("__nv int  priv_{};\n", &lock[5..]));
    }
    out.push('\n');
    let mut block_counter = 0u32;
    for task in &program.tasks {
        out.push_str(&format!("task {}() {{\n", task.name));
        emit_stmts(
            &mut out,
            &task.body,
            analysis,
            1,
            &mut block_counter,
            &task.name,
        );
        out.push_str("}\n\n");
    }
    out
}

fn ind(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn emit_stmts(
    out: &mut String,
    stmts: &[Stmt],
    a: &Analysis,
    depth: usize,
    blocks: &mut u32,
    task: &str,
) {
    for s in stmts {
        emit_stmt(out, s, a, depth, blocks, task);
    }
}

fn emit_call(out: &mut String, call: &IoCall, a: &Analysis, depth: usize, bind: Option<&str>) {
    let lock = &a.lock_names[&call.id];
    let slot = &lock[5..]; // strip "lock_"
    let deps = &a.io_deps[&call.id];
    let mut cond = match call.sem {
        Sem::Single => format!("!{lock}"),
        Sem::Timely(ms) => format!("!{lock} || (GetTime() - ts_{slot}) > {ms}"),
        Sem::Always => "1 /* Always */".to_string(),
    };
    for d in deps {
        // depend_flg wiring: re-execute when a producer re-executed (§3.3.2).
        cond.push_str(&format!(" || depend_flg_{}", &a.lock_names[d][5..]));
    }
    ind(out, depth);
    out.push_str(&format!("if ({cond}) {{\n"));
    ind(out, depth + 1);
    let args = call
        .args
        .iter()
        .map(expr_src)
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("priv_{slot} = {}({args});\n", call.func.name()));
    if let Sem::Timely(_) = call.sem {
        ind(out, depth + 1);
        out.push_str(&format!("ts_{slot} = GetTime();\n"));
    }
    if call.sem != Sem::Always {
        ind(out, depth + 1);
        out.push_str(&format!("{lock} = SET;\n"));
    }
    ind(out, depth + 1);
    out.push_str(&format!("depend_flg_{slot} = SET;\n"));
    ind(out, depth);
    out.push_str("}\n");
    if let Some(name) = bind {
        ind(out, depth);
        out.push_str(&format!("{name} = priv_{slot};\n"));
    }
}

fn emit_stmt(out: &mut String, s: &Stmt, a: &Analysis, depth: usize, blocks: &mut u32, task: &str) {
    match s {
        Stmt::Let { name, expr, .. } | Stmt::Assign { name, expr, .. } => {
            if let Expr::CallIo(call) = expr {
                emit_call(out, call, a, depth, Some(name));
            } else {
                ind(out, depth);
                out.push_str(&format!("{name} = {};\n", expr_src(expr)));
            }
        }
        Stmt::AssignIndex {
            name, index, expr, ..
        } => {
            ind(out, depth);
            out.push_str(&format!(
                "{name}[{}] = {};\n",
                expr_src(index),
                expr_src(expr)
            ));
        }
        Stmt::Compute(e, _) => {
            ind(out, depth);
            out.push_str(&format!("compute({});\n", expr_src(e)));
        }
        Stmt::CallIoStmt(call) => emit_call(out, call, a, depth, None),
        Stmt::DmaCopy {
            src,
            dst,
            elems,
            exclude,
            id,
            ..
        } => {
            ind(out, depth);
            let related = a.dma_related.get(id).map(|v| v.as_slice()).unwrap_or(&[]);
            let note = if *exclude {
                " /* Exclude: Always at compile time */".to_string()
            } else if related.is_empty() {
                String::new()
            } else {
                format!(
                    " /* RelatedConstFlag <- {} */",
                    related
                        .iter()
                        .map(|d| a.lock_names[d][5..].to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            out.push_str(&format!(
                "_DMA_copy(&{}[{}], &{}[{}], {elems});{note}\n",
                src.name,
                expr_src(&src.index),
                dst.name,
                expr_src(&dst.index)
            ));
            ind(out, depth);
            out.push_str("/* region boundary: regional privatization + recovery */\n");
        }
        Stmt::IoBlock { sem, body, .. } => {
            let b = *blocks;
            *blocks += 1;
            let flag = format!("flag_block_{task}_{b}");
            ind(out, depth);
            let cond = match sem {
                Sem::Single => format!("!{flag}"),
                Sem::Timely(ms) => {
                    format!("!{flag} || (GetTime() - time_blck_{task}_{b}) > {ms}")
                }
                Sem::Always => "1".into(),
            };
            out.push_str(&format!("if ({cond}) {{\n"));
            emit_stmts(out, body, a, depth + 1, blocks, task);
            if let Sem::Timely(_) = sem {
                ind(out, depth + 1);
                out.push_str(&format!("time_blck_{task}_{b} = GetTime();\n"));
            }
            ind(out, depth + 1);
            out.push_str(&format!("{flag} = SET;\n"));
            ind(out, depth);
            out.push_str("}\n");
        }
        Stmt::If {
            cond, then, els, ..
        } => {
            ind(out, depth);
            out.push_str(&format!("if ({}) {{\n", expr_src(cond)));
            emit_stmts(out, then, a, depth + 1, blocks, task);
            if els.is_empty() {
                ind(out, depth);
                out.push_str("}\n");
            } else {
                ind(out, depth);
                out.push_str("} else {\n");
                emit_stmts(out, els, a, depth + 1, blocks, task);
                ind(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::Repeat {
            var, count, body, ..
        } => {
            ind(out, depth);
            out.push_str(&format!(
                "for (int {var} = 0; {var} < {count}; {var}++) {{ /* lock array (§6) */\n"
            ));
            emit_stmts(out, body, a, depth + 1, blocks, task);
            ind(out, depth);
            out.push_str("}\n");
        }
        Stmt::LeaFir {
            x,
            h,
            y,
            n_out,
            taps,
            ..
        } => {
            ind(out, depth);
            out.push_str(&format!(
                "LEA_FIR({x}, {h}, {y}, {n_out}, {taps}); /* Always: volatile operands */\n"
            ));
        }
        Stmt::LeaConv2d {
            input,
            w,
            h,
            kernel,
            kw,
            kh,
            out: o,
            ..
        } => {
            ind(out, depth);
            out.push_str(&format!(
                "LEA_CONV2D({input}, {w}, {h}, {kernel}, {kw}, {kh}, {o}); /* Always */\n"
            ));
        }
        Stmt::LeaRelu { buf, n, .. } => {
            ind(out, depth);
            out.push_str(&format!("LEA_RELU({buf}, {n}); /* Always */\n"));
        }
        Stmt::LeaFc {
            x,
            n_in,
            weights,
            out: o,
            n_out,
            ..
        } => {
            ind(out, depth);
            out.push_str(&format!(
                "LEA_FC({x}, {n_in}, {weights}, {o}, {n_out}); /* Always */\n"
            ));
        }
        Stmt::Next(t, _) => {
            ind(out, depth);
            out.push_str(&format!("task_t(next_{t});\n"));
        }
        Stmt::Done(_) => {
            ind(out, depth);
            out.push_str("task_t(done);\n");
        }
    }
}

fn expr_src(e: &Expr) -> String {
    match e {
        Expr::Int(n) => n.to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Index(a, i) => format!("{a}[{}]", expr_src(i)),
        Expr::Bin(op, l, r) => {
            let o = match op {
                Op::Add => "+",
                Op::Sub => "-",
                Op::Mul => "*",
                Op::Div => "/",
                Op::Rem => "%",
                Op::Eq => "==",
                Op::Ne => "!=",
                Op::Lt => "<",
                Op::Le => "<=",
                Op::Gt => ">",
                Op::Ge => ">=",
            };
            format!("({} {o} {})", expr_src(l), expr_src(r))
        }
        Expr::CallIo(c) => format!("{}(...)", c.func.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse;

    fn transformed(src: &str) -> String {
        let mut p = parse(src).unwrap();
        let a = analyze(&mut p).unwrap();
        transform(&p, &a)
    }

    #[test]
    fn fig5_structure_for_a_timely_call() {
        // The paper's Figure 5 transformation of `temp = _call_IO(Temp,
        // "Timely", 50)`: time check, private copy, timestamp, lock.
        let out = transformed(
            r#"
            __nv int temp;
            task T1 {
                temp = _call_IO(Temp, Timely, 50);
                done;
            }
        "#,
        );
        assert!(out.contains("if (!lock_Temp_T1_0 || (GetTime() - ts_Temp_T1_0) > 50)"));
        assert!(out.contains("priv_Temp_T1_0 = Temp();"));
        assert!(out.contains("ts_Temp_T1_0 = GetTime();"));
        assert!(out.contains("lock_Temp_T1_0 = SET;"));
        assert!(out.contains("temp = priv_Temp_T1_0;"));
    }

    #[test]
    fn depend_flg_appears_for_dependent_sends() {
        let out = transformed(
            r#"
            task T1 {
                let t = _call_IO(Temp, Timely, 50);
                _call_IO(Send, Single, t);
                done;
            }
        "#,
        );
        assert!(
            out.contains("if (!lock_Send_T1_0 || depend_flg_Temp_T1_0)"),
            "missing depend_flg wiring:\n{out}"
        );
    }

    #[test]
    fn block_flag_and_time_check() {
        let out = transformed(
            r#"
            task T1 {
                _IO_block_begin(Timely, 10);
                let p = _call_IO(Pres, Single);
                _IO_block_end;
                done;
            }
        "#,
        );
        assert!(out.contains("if (!flag_block_T1_0 || (GetTime() - time_blck_T1_0) > 10)"));
        assert!(out.contains("flag_block_T1_0 = SET;"));
    }

    #[test]
    fn dma_related_comment_names_the_producer() {
        let out = transformed(
            r#"
            __nv int a[4];
            __nv int b[4];
            task T1 {
                a[0] = _call_IO(Light, Always);
                _DMA_copy(a[0], b[0], 2);
                done;
            }
        "#,
        );
        assert!(out.contains("RelatedConstFlag <- Light_T1_0"), "{out}");
        assert!(out.contains("region boundary"));
    }

    #[test]
    fn exclude_is_noted() {
        let out = transformed(
            r#"
            __nv int a[4];
            __nv int b[4];
            task T1 { _DMA_copy(a[0], b[0], 2, Exclude); done; }
        "#,
        );
        assert!(out.contains("Exclude: Always at compile time"));
    }
}
