//! Semantic analysis: name resolution, structural checks, call-site
//! numbering, and data-dependence inference (paper §3.3.2, §4.3.1, §4.5).
//!
//! The dependence inference is a per-task forward taint analysis: every
//! `_call_IO` result taints the values it flows into (through locals,
//! `__nv` scalars, and — at whole-array granularity — `__nv` arrays);
//! a later `_call_IO` *depends on* the taints of its arguments, and a
//! `_DMA_copy` is *related to* the taints of its source array. At run time
//! the lowered program passes these sets into the runtime so a dependent
//! operation re-executes whenever a producer re-executed — the automation
//! the paper's compiler front-end provides over the bare runtime API.

use crate::ast::*;
use crate::CompileError;
use std::collections::{BTreeSet, HashMap};

/// Result of semantic analysis.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// For each `_call_IO` node id: the node ids its arguments derive from.
    pub io_deps: HashMap<u32, Vec<u32>>,
    /// For each `_DMA_copy` node id: the node ids its source data derives
    /// from (the `RelatedConstFlag` wiring).
    pub dma_related: HashMap<u32, Vec<u32>>,
    /// For each `_call_IO` node id: the generated lock-flag name
    /// (`lock_##fn##task##num`, §4.5).
    pub lock_names: HashMap<u32, String>,
    /// Per task: number of `_DMA_copy` sites (the task splits into N+1
    /// regions, §4.4).
    pub dma_sites_per_task: HashMap<String, u32>,
    /// Total `_call_IO` sites.
    pub io_sites: u32,
    /// `_call_IO` sites with `Timely` semantics (extra timestamp word).
    pub timely_sites: u32,
    /// Total I/O blocks.
    pub io_blocks: u32,
}

type Taint = BTreeSet<u32>;

struct Cx<'p> {
    program: &'p Program,
    analysis: Analysis,
    next_id: u32,
    /// Per (fn name, task name): occurrence counter for lock naming.
    lock_counts: HashMap<(String, String), u32>,
}

/// Per-task analysis environment.
#[derive(Debug, Clone, Default)]
struct Env {
    /// Taint of locals and `__nv` scalars by name.
    vars: HashMap<String, Taint>,
    /// Taint of `__nv` arrays (whole-array granularity).
    arrays: HashMap<String, Taint>,
    /// Locals currently in scope.
    locals: BTreeSet<String>,
}

impl Env {
    fn merge(&mut self, other: &Env) {
        for (k, v) in &other.vars {
            self.vars.entry(k.clone()).or_default().extend(v);
        }
        for (k, v) in &other.arrays {
            self.arrays.entry(k.clone()).or_default().extend(v);
        }
        // Locals bound in only one branch are not in scope afterwards, so
        // keep the intersection.
        self.locals = self.locals.intersection(&other.locals).cloned().collect();
    }
}

/// Analyzes the program, assigning node ids in place.
pub fn analyze(program: &mut Program) -> Result<Analysis, CompileError> {
    // Structural checks first (on the immutable view).
    check_structure(program)?;
    let snapshot = program.clone();
    let mut cx = Cx {
        program: &snapshot,
        analysis: Analysis::default(),
        next_id: 1,
        lock_counts: HashMap::new(),
    };
    for task in &mut program.tasks {
        let mut env = Env::default();
        let task_name = task.name.clone();
        cx.stmts(&mut task.body, &mut env, &task_name, false)?;
    }
    Ok(cx.analysis)
}

fn check_structure(program: &Program) -> Result<(), CompileError> {
    let mut names = BTreeSet::new();
    for d in &program.decls {
        if !names.insert(&d.name) {
            return Err(CompileError {
                line: d.line,
                msg: format!("duplicate __nv declaration {:?}", d.name),
            });
        }
        if d.len == Some(0) {
            return Err(CompileError {
                line: d.line,
                msg: format!("zero-length array {:?}", d.name),
            });
        }
    }
    let mut task_names = BTreeSet::new();
    for t in &program.tasks {
        if !task_names.insert(&t.name) {
            return Err(CompileError {
                line: t.line,
                msg: format!("duplicate task {:?}", t.name),
            });
        }
    }
    for t in &program.tasks {
        if !terminates(&t.body) {
            return Err(CompileError {
                line: t.line,
                msg: format!(
                    "task {:?} has a control path that falls off the end \
                     (every path must reach `next` or `done`)",
                    t.name
                ),
            });
        }
    }
    Ok(())
}

/// Whether every control path through `stmts` ends in `next`/`done`.
fn terminates(stmts: &[Stmt]) -> bool {
    match stmts.last() {
        Some(Stmt::Next(..)) | Some(Stmt::Done(..)) => true,
        Some(Stmt::If { then, els, .. }) => {
            !then.is_empty() && !els.is_empty() && terminates(then) && terminates(els)
        }
        _ => false,
    }
}

impl Cx<'_> {
    fn err<T>(&self, line: u32, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError {
            line,
            msg: msg.into(),
        })
    }

    fn decl(&self, name: &str) -> Option<&NvDecl> {
        self.program.decls.iter().find(|d| d.name == name)
    }

    fn is_task(&self, name: &str) -> bool {
        self.program.tasks.iter().any(|t| t.name == name)
    }

    /// Taint of an expression; also assigns ids to embedded `_call_IO`s.
    fn expr(
        &mut self,
        e: &mut Expr,
        env: &mut Env,
        task: &str,
        in_block: bool,
    ) -> Result<Taint, CompileError> {
        match e {
            Expr::Int(_) => Ok(Taint::new()),
            Expr::Var(name) => {
                if env.locals.contains(name) || self.decl_scalar(name) {
                    Ok(env.vars.get(name).cloned().unwrap_or_default())
                } else if self.decl(name).is_some() {
                    self.err(0, format!("array {name:?} used as a scalar"))
                } else {
                    self.err(0, format!("unknown variable {name:?}"))
                }
            }
            Expr::Index(name, idx) => {
                let Some(d) = self.decl(name) else {
                    return self.err(0, format!("unknown array {name:?}"));
                };
                if d.len.is_none() {
                    return self.err(d.line, format!("scalar {name:?} indexed like an array"));
                }
                let mut t = self.expr(idx, env, task, in_block)?;
                t.extend(env.arrays.get(name).cloned().unwrap_or_default());
                Ok(t)
            }
            Expr::Bin(_, l, r) => {
                let mut t = self.expr(l, env, task, in_block)?;
                t.extend(self.expr(r, env, task, in_block)?);
                Ok(t)
            }
            Expr::CallIo(call) => self.io_call(call, env, task, in_block),
        }
    }

    fn decl_scalar(&self, name: &str) -> bool {
        matches!(self.decl(name), Some(d) if d.len.is_none())
    }

    /// Processes a `_call_IO`: id assignment, lock naming, dependence set.
    /// Returns the taint of its value ({its own id}).
    fn io_call(
        &mut self,
        call: &mut IoCall,
        env: &mut Env,
        task: &str,
        in_block: bool,
    ) -> Result<Taint, CompileError> {
        let mut deps = Taint::new();
        // Per-function argument conventions.
        let mut capture_target: Option<String> = None;
        match call.func {
            IoFunc::Send => {
                if call.args.is_empty() {
                    return self.err(call.line, "Send needs at least one payload value");
                }
                for a in &mut call.args {
                    deps.extend(self.expr(a, env, task, in_block)?);
                }
            }
            IoFunc::Capture => {
                // Capture(img, w, h, seed): img is a __nv array reference.
                let (name, w, h) = match call.args.as_slice() {
                    [Expr::Var(n), Expr::Int(w), Expr::Int(h), Expr::Int(_seed)] => {
                        (n.clone(), *w, *h)
                    }
                    _ => {
                        return self.err(
                            call.line,
                            "Capture takes (array, width, height, seed) with constant dims",
                        )
                    }
                };
                match self.decl(&name) {
                    Some(d) if d.len.is_some() && d.region == DeclRegion::Fram => {
                        if (d.len.unwrap() as i64) < w * h {
                            return self.err(
                                call.line,
                                format!(
                                    "Capture target {name:?} holds {} elements, needs {}",
                                    d.len.unwrap(),
                                    w * h
                                ),
                            );
                        }
                    }
                    _ => {
                        return self.err(
                            call.line,
                            format!("Capture target {name:?} must be a __nv array"),
                        )
                    }
                }
                capture_target = Some(name);
            }
            IoFunc::Argmax => {
                let (name, n) = match call.args.as_slice() {
                    [Expr::Var(n), Expr::Int(c)] => (n.clone(), *c),
                    _ => return self.err(call.line, "Argmax takes (__lea array, constant count)"),
                };
                match self.decl(&name) {
                    Some(d) if d.region == DeclRegion::Lea => {
                        if (d.len.unwrap_or(0) as i64) < n || n <= 0 {
                            return self.err(
                                call.line,
                                format!("Argmax over {n} elements of {name:?} out of range"),
                            );
                        }
                    }
                    _ => {
                        return self.err(
                            call.line,
                            format!("Argmax operand {name:?} must be a __lea array"),
                        )
                    }
                }
                deps.extend(env.arrays.get(&name).cloned().unwrap_or_default());
            }
            _ => {
                if !call.args.is_empty() {
                    return self.err(
                        call.line,
                        format!("{} takes no arguments", call.func.name()),
                    );
                }
            }
        }
        if call.id == 0 {
            call.id = self.next_id;
            self.next_id += 1;
            self.analysis.io_sites += 1;
            if matches!(call.sem, Sem::Timely(_)) {
                self.analysis.timely_sites += 1;
            }
            let n = self
                .lock_counts
                .entry((call.func.name().to_string(), task.to_string()))
                .or_insert(0);
            self.analysis
                .lock_names
                .insert(call.id, format!("lock_{}_{}_{}", call.func.name(), task, n));
            *n += 1;
        }
        // Union into any previous visit (loop fixpoint passes re-visit).
        let entry = self.analysis.io_deps.entry(call.id).or_default();
        let mut set: Taint = entry.iter().copied().collect();
        set.extend(deps);
        *entry = set.into_iter().collect();
        // A capture taints its destination array.
        if let Some(name) = capture_target {
            env.arrays.entry(name).or_default().insert(call.id);
        }
        Ok([call.id].into_iter().collect())
    }

    fn stmts(
        &mut self,
        stmts: &mut [Stmt],
        env: &mut Env,
        task: &str,
        in_block: bool,
    ) -> Result<(), CompileError> {
        for s in stmts.iter_mut() {
            self.stmt(s, env, task, in_block)?;
        }
        Ok(())
    }

    fn stmt(
        &mut self,
        s: &mut Stmt,
        env: &mut Env,
        task: &str,
        in_block: bool,
    ) -> Result<(), CompileError> {
        match s {
            Stmt::Let { name, expr, line } => {
                if self.decl(name).is_some() {
                    return self.err(*line, format!("`let {name}` shadows a __nv declaration"));
                }
                let t = self
                    .expr(expr, env, task, in_block)
                    .map_err(|e| self.reline(e, *line))?;
                env.locals.insert(name.clone());
                env.vars.insert(name.clone(), t);
                Ok(())
            }
            Stmt::Assign { name, expr, line } => {
                if in_block {
                    return self.err(
                        *line,
                        "I/O blocks contain only I/O calls and `let` bindings (paper §3.2)",
                    );
                }
                if !env.locals.contains(name) && !self.decl_scalar(name) {
                    return self.err(
                        *line,
                        format!("assignment to undeclared name {name:?} (missing `let`?)"),
                    );
                }
                let t = self
                    .expr(expr, env, task, in_block)
                    .map_err(|e| self.reline(e, *line))?;
                env.vars.insert(name.clone(), t);
                Ok(())
            }
            Stmt::AssignIndex {
                name,
                index,
                expr,
                line,
            } => {
                if in_block {
                    return self.err(*line, "no array writes inside I/O blocks");
                }
                match self.decl(name) {
                    Some(d) if d.len.is_some() => {}
                    Some(d) => {
                        return self.err(d.line, format!("scalar {name:?} indexed like an array"))
                    }
                    None => return self.err(*line, format!("unknown array {name:?}")),
                }
                let mut t = self
                    .expr(index, env, task, in_block)
                    .map_err(|e| self.reline(e, *line))?;
                t.extend(
                    self.expr(expr, env, task, in_block)
                        .map_err(|e| self.reline(e, *line))?,
                );
                env.arrays.entry(name.clone()).or_default().extend(t);
                Ok(())
            }
            Stmt::Compute(e, line) => {
                if in_block {
                    return self.err(*line, "no `compute` inside I/O blocks (paper §3.2)");
                }
                self.expr(e, env, task, in_block)
                    .map_err(|e| self.reline(e, *line))?;
                Ok(())
            }
            Stmt::CallIoStmt(call) => {
                self.io_call(call, env, task, in_block)?;
                Ok(())
            }
            Stmt::DmaCopy {
                src,
                dst,
                elems,
                line,
                id,
                ..
            } => {
                if in_block {
                    return self.err(*line, "DMA copies sit outside I/O blocks");
                }
                for (what, r) in [("source", &mut *src), ("destination", &mut *dst)] {
                    match self.decl(&r.name) {
                        Some(d) if d.len.is_some() => {
                            if let (Expr::Int(base), Some(len)) = (&r.index, d.len) {
                                if *base as u64 + *elems as u64 > len as u64 {
                                    return self.err(
                                        *line,
                                        format!(
                                            "_DMA_copy {what} {}[{base}..+{elems}] overflows \
                                             length {len}",
                                            r.name
                                        ),
                                    );
                                }
                            }
                        }
                        _ => {
                            return self.err(
                                *line,
                                format!("_DMA_copy {what} {:?} is not a __nv array", r.name),
                            )
                        }
                    }
                }
                let mut related = env.arrays.get(&src.name).cloned().unwrap_or_default();
                related.extend(
                    self.expr(&mut src.index, env, task, in_block)
                        .map_err(|e| self.reline(e, *line))?,
                );
                self.expr(&mut dst.index, env, task, in_block)
                    .map_err(|e| self.reline(e, *line))?;
                if *id == 0 {
                    *id = self.next_id;
                    self.next_id += 1;
                    *self
                        .analysis
                        .dma_sites_per_task
                        .entry(task.to_string())
                        .or_insert(0) += 1;
                }
                let entry = self.analysis.dma_related.entry(*id).or_default();
                let mut set: Taint = entry.iter().copied().collect();
                set.extend(related.iter().copied());
                *entry = set.into_iter().collect();
                // The destination array now carries the source's taints.
                let src_taint = env.arrays.get(&src.name).cloned().unwrap_or_default();
                env.arrays
                    .entry(dst.name.clone())
                    .or_default()
                    .extend(src_taint);
                Ok(())
            }
            Stmt::IoBlock { body, .. } => {
                self.analysis.io_blocks += 1;
                self.stmts(body, env, task, true)
            }
            Stmt::If {
                cond,
                then,
                els,
                line,
            } => {
                if in_block {
                    return self.err(*line, "no control flow inside I/O blocks");
                }
                self.expr(cond, env, task, in_block)
                    .map_err(|e| self.reline(e, *line))?;
                let mut then_env = env.clone();
                self.stmts(then, &mut then_env, task, in_block)?;
                let mut els_env = env.clone();
                self.stmts(els, &mut els_env, task, in_block)?;
                *env = then_env;
                env.merge(&els_env);
                Ok(())
            }
            Stmt::Repeat {
                var, body, line, ..
            } => {
                if in_block {
                    return self.err(*line, "no loops inside I/O blocks");
                }
                env.locals.insert(var.clone());
                env.vars.insert(var.clone(), Taint::new());
                // Two passes propagate loop-carried taints to a fixpoint:
                // taint only grows and one round carries a value once. Node
                // ids are assigned on the first visit and reused after.
                self.stmts(body, env, task, in_block)?;
                self.stmts(body, env, task, in_block)?;
                Ok(())
            }
            Stmt::LeaConv2d {
                input,
                w,
                h,
                kernel,
                kw,
                kh,
                out,
                line,
                id,
            } => {
                if in_block {
                    return self.err(*line, "no LEA calls inside I/O blocks");
                }
                for (what, name, need) in [
                    ("input", &*input, *w * *h),
                    ("kernel", &*kernel, *kw * *kh),
                    ("output", &*out, (*w - *kw + 1) * (*h - *kh + 1)),
                ] {
                    self.check_lea_array(*line, what, name, need)?;
                }
                let mut deps = env.arrays.get(input.as_str()).cloned().unwrap_or_default();
                deps.extend(env.arrays.get(kernel.as_str()).cloned().unwrap_or_default());
                self.lea_site(id, "Conv2d", task, deps.clone());
                deps.insert(*id);
                env.arrays.entry(out.clone()).or_default().extend(deps);
                Ok(())
            }
            Stmt::LeaRelu { buf, n, line, id } => {
                if in_block {
                    return self.err(*line, "no LEA calls inside I/O blocks");
                }
                self.check_lea_array(*line, "buffer", buf, *n)?;
                let deps = env.arrays.get(buf.as_str()).cloned().unwrap_or_default();
                self.lea_site(id, "Relu", task, deps.clone());
                env.arrays.entry(buf.clone()).or_default().insert(*id);
                Ok(())
            }
            Stmt::LeaFc {
                x,
                n_in,
                weights,
                out,
                n_out,
                line,
                id,
            } => {
                if in_block {
                    return self.err(*line, "no LEA calls inside I/O blocks");
                }
                self.check_lea_array(*line, "input", x, *n_in)?;
                self.check_lea_array(*line, "weights", weights, *n_in * *n_out)?;
                self.check_lea_array(*line, "output", out, *n_out)?;
                let mut deps = env.arrays.get(x.as_str()).cloned().unwrap_or_default();
                deps.extend(
                    env.arrays
                        .get(weights.as_str())
                        .cloned()
                        .unwrap_or_default(),
                );
                self.lea_site(id, "Fc", task, deps.clone());
                deps.insert(*id);
                env.arrays.entry(out.clone()).or_default().extend(deps);
                Ok(())
            }
            Stmt::LeaFir {
                x,
                h,
                y,
                n_out,
                taps,
                line,
                id,
            } => {
                if in_block {
                    return self.err(*line, "no LEA calls inside I/O blocks");
                }
                for (what, name, need) in [
                    ("input", &*x, *n_out + *taps - 1),
                    ("coefficients", &*h, *taps),
                    ("output", &*y, *n_out),
                ] {
                    match self.decl(name) {
                        Some(d) if d.region == DeclRegion::Lea => {
                            if d.len.unwrap_or(0) < need {
                                return self.err(
                                    *line,
                                    format!(
                                        "lea_fir {what} {name:?} needs {need} elements, \
                                         has {}",
                                        d.len.unwrap_or(0)
                                    ),
                                );
                            }
                        }
                        Some(_) => {
                            return self.err(
                                *line,
                                format!(
                                    "lea_fir {what} {name:?} must be a __lea array \
                                     (the LEA only addresses LEA-RAM)"
                                ),
                            )
                        }
                        None => return self.err(*line, format!("unknown array {name:?}")),
                    }
                }
                if *id == 0 {
                    *id = self.next_id;
                    self.next_id += 1;
                    self.analysis.io_sites += 1;
                    let n = self
                        .lock_counts
                        .entry(("Fir".to_string(), task.to_string()))
                        .or_insert(0);
                    self.analysis
                        .lock_names
                        .insert(*id, format!("lock_Fir_{task}_{n}"));
                    *n += 1;
                }
                // The call depends on its operand arrays' taints; the output
                // array carries them plus the call's own taint.
                let mut deps = env.arrays.get(x.as_str()).cloned().unwrap_or_default();
                deps.extend(env.arrays.get(h.as_str()).cloned().unwrap_or_default());
                let entry = self.analysis.io_deps.entry(*id).or_default();
                let mut set: Taint = entry.iter().copied().collect();
                set.extend(deps.iter().copied());
                *entry = set.into_iter().collect();
                let mut out_taint = deps;
                out_taint.insert(*id);
                env.arrays.entry(y.clone()).or_default().extend(out_taint);
                Ok(())
            }
            Stmt::Next(target, line) => {
                if in_block {
                    return self.err(*line, "no task transitions inside I/O blocks");
                }
                if !self.is_task(target) {
                    return self.err(*line, format!("unknown task {target:?}"));
                }
                Ok(())
            }
            Stmt::Done(line) => {
                if in_block {
                    return self.err(*line, "no task transitions inside I/O blocks");
                }
                Ok(())
            }
        }
    }

    fn check_lea_array(
        &self,
        line: u32,
        what: &str,
        name: &str,
        need: u32,
    ) -> Result<(), CompileError> {
        match self.decl(name) {
            Some(d) if d.region == DeclRegion::Lea => {
                if d.len.unwrap_or(0) < need {
                    self.err(
                        line,
                        format!(
                            "LEA {what} {name:?} needs {need} elements, has {}",
                            d.len.unwrap_or(0)
                        ),
                    )
                } else {
                    Ok(())
                }
            }
            _ => self.err(line, format!("LEA {what} {name:?} must be a __lea array")),
        }
    }

    /// Registers a LEA statement as an I/O site with inferred deps.
    fn lea_site(&mut self, id: &mut u32, fname: &str, task: &str, deps: Taint) {
        if *id == 0 {
            *id = self.next_id;
            self.next_id += 1;
            self.analysis.io_sites += 1;
            let n = self
                .lock_counts
                .entry((fname.to_string(), task.to_string()))
                .or_insert(0);
            self.analysis
                .lock_names
                .insert(*id, format!("lock_{fname}_{task}_{n}"));
            *n += 1;
        }
        let entry = self.analysis.io_deps.entry(*id).or_default();
        let mut set: Taint = entry.iter().copied().collect();
        set.extend(deps);
        *entry = set.into_iter().collect();
    }

    fn reline(&self, mut e: CompileError, line: u32) -> CompileError {
        if e.line == 0 {
            e.line = line;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyzed(src: &str) -> (Program, Analysis) {
        let mut p = parse(src).unwrap();
        let a = analyze(&mut p).unwrap();
        (p, a)
    }

    fn analyze_err(src: &str) -> CompileError {
        let mut p = parse(src).unwrap();
        analyze(&mut p).unwrap_err()
    }

    #[test]
    fn fig4_dependencies_are_inferred() {
        // The paper's Figure 4: Send(temp, humd) must depend on both senses.
        let src = r#"
            task t1 {
                let temp = _call_IO(Temp, Timely, 50);
                let humd = _call_IO(Humd, Timely, 20);
                _call_IO(Send, Single, temp, humd);
                done;
            }
        "#;
        let (p, a) = analyzed(src);
        // Find the three call ids in order.
        let ids: Vec<u32> = (1..=3).collect();
        assert_eq!(a.io_deps[&ids[0]], Vec::<u32>::new());
        assert_eq!(a.io_deps[&ids[1]], Vec::<u32>::new());
        assert_eq!(a.io_deps[&ids[2]], vec![ids[0], ids[1]]);
        assert_eq!(p.tasks.len(), 1);
    }

    #[test]
    fn taint_flows_through_arithmetic_and_nv_scalars() {
        let src = r#"
            __nv int cache;
            task t {
                let raw = _call_IO(Temp, Always);
                cache = raw * 2 + 1;
                _call_IO(Send, Single, cache - 5);
                done;
            }
        "#;
        let (_, a) = analyzed(src);
        assert_eq!(
            a.io_deps[&2],
            vec![1],
            "Send depends on the sense via `cache`"
        );
    }

    #[test]
    fn dma_related_wires_io_producers_of_the_source_array() {
        // §4.3.1: a DMA copying data derived from an I/O output carries the
        // RelatedConstFlag of that I/O.
        let src = r#"
            __nv int buf[8];
            __nv int out[8];
            task t {
                let v = _call_IO(Accel, Always);
                buf[0] = v;
                _DMA_copy(buf[0], out[0], 4);
                done;
            }
        "#;
        let (_, a) = analyzed(src);
        let dma_id = 2; // sense = 1, dma = 2
        assert_eq!(a.dma_related[&dma_id], vec![1]);
    }

    #[test]
    fn dma_taint_propagates_through_copies() {
        let src = r#"
            __nv int a[8];
            __nv int b[8];
            __nv int c[8];
            task t {
                a[0] = _call_IO(Light, Always);
                _DMA_copy(a[0], b[0], 4);
                _DMA_copy(b[0], c[0], 4);
                done;
            }
        "#;
        let (_, a) = analyzed(src);
        assert_eq!(
            a.dma_related[&2],
            vec![1],
            "first copy related to the sense"
        );
        assert_eq!(
            a.dma_related[&3],
            vec![1],
            "taint follows into the second copy"
        );
    }

    #[test]
    fn lock_names_follow_the_paper_scheme() {
        let src = r#"
            task sense {
                let a = _call_IO(Temp, Single);
                let b = _call_IO(Temp, Single);
                done;
            }
        "#;
        let (_, a) = analyzed(src);
        assert_eq!(a.lock_names[&1], "lock_Temp_sense_0");
        assert_eq!(a.lock_names[&2], "lock_Temp_sense_1");
    }

    #[test]
    fn branch_taints_merge() {
        let src = r#"
            __nv int y;
            task t {
                let a = _call_IO(Temp, Always);
                let b = _call_IO(Pres, Always);
                if (a < 0) { y = a; } else { y = b; }
                _call_IO(Send, Single, y);
                done;
            }
        "#;
        let (_, a) = analyzed(src);
        assert_eq!(a.io_deps[&3], vec![1, 2], "deps from both branches");
    }

    #[test]
    fn loop_carried_taint_reaches_fixpoint() {
        let src = r#"
            __nv int acc;
            task t {
                acc = 0;
                repeat (i, 4) {
                    let s = _call_IO(Light, Single);
                    acc = acc + s;
                }
                _call_IO(Send, Single, acc);
                done;
            }
        "#;
        let (_, a) = analyzed(src);
        // Send (last id) depends on the loop's sense node.
        let send_id = *a.io_deps.keys().max().unwrap();
        assert_eq!(a.io_deps[&send_id], vec![1]);
    }

    #[test]
    fn structural_errors() {
        assert!(analyze_err("task t { let x = y; done; }")
            .msg
            .contains("unknown variable"));
        assert!(analyze_err("task t { x = 3; done; }")
            .msg
            .contains("undeclared"));
        assert!(analyze_err("task t { next missing; }")
            .msg
            .contains("unknown task"));
        assert!(analyze_err("task t { compute(5); }")
            .msg
            .contains("falls off the end"));
        assert!(analyze_err("__nv int a; __nv int a; task t { done; }")
            .msg
            .contains("duplicate"));
        assert!(analyze_err(
            "task t { _IO_block_begin(Single); compute(5); _IO_block_end; done; }"
        )
        .msg
        .contains("I/O blocks"));
        assert!(analyze_err(
            "__nv int a[4]; __nv int b[4]; task t { _DMA_copy(a[2], b[0], 4); done; }"
        )
        .msg
        .contains("overflows"));
    }

    #[test]
    fn dma_site_counts_per_task() {
        let src = r#"
            __nv int a[8];
            __nv int b[8];
            task one { _DMA_copy(a[0], b[0], 2); _DMA_copy(a[2], b[2], 2); next two; }
            task two { done; }
        "#;
        let (_, a) = analyzed(src);
        assert_eq!(a.dma_sites_per_task["one"], 2);
        assert_eq!(a.dma_sites_per_task.get("two"), None);
    }
}

#[cfg(test)]
mod lea_and_capture_tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_err(src: &str) -> CompileError {
        let mut p = parse(src).unwrap();
        analyze(&mut p).unwrap_err()
    }

    fn analyzed_ok(src: &str) -> Analysis {
        let mut p = parse(src).unwrap();
        analyze(&mut p).unwrap()
    }

    #[test]
    fn capture_validates_target_shape() {
        assert!(analyze_err(
            "__nv int img[100]; task t { _call_IO(Capture, Single, img, 12, 12, 7); done; }"
        )
        .msg
        .contains("holds 100 elements, needs 144"));
        assert!(analyze_err(
            "__lea int img[144]; task t { _call_IO(Capture, Single, img, 12, 12, 7); done; }"
        )
        .msg
        .contains("must be a __nv array"));
        assert!(
            analyze_err("task t { _call_IO(Capture, Single, 3, 12, 12, 7); done; }")
                .msg
                .contains("Capture takes")
        );
    }

    #[test]
    fn argmax_requires_lea_operand_and_bounds() {
        assert!(analyze_err(
            "__nv int b[4]; task t { let c = _call_IO(Argmax, Always, b, 4); done; }"
        )
        .msg
        .contains("__lea array"));
        assert!(analyze_err(
            "__lea int b[4]; task t { let c = _call_IO(Argmax, Always, b, 9); done; }"
        )
        .msg
        .contains("out of range"));
    }

    #[test]
    fn lea_ops_check_shapes() {
        assert!(analyze_err(
            "__lea int a[8]; __lea int k[16]; __lea int o[8]; \
             task t { lea_conv2d(a, 12, 12, k, 4, 4, o); done; }"
        )
        .msg
        .contains("needs 144 elements"));
        assert!(analyze_err(
            "__nv int a[200]; __lea int k[16]; __lea int o[81]; \
             task t { lea_conv2d(a, 12, 12, k, 4, 4, o); done; }"
        )
        .msg
        .contains("must be a __lea array"));
        assert!(analyze_err(
            "__lea int x[4]; __lea int w[4]; __lea int o[4]; \
             task t { lea_fc(x, 4, w, o, 4); done; }"
        )
        .msg
        .contains("weights"));
    }

    #[test]
    fn capture_taints_flow_to_dependent_sends() {
        // Capture → DMA → argmax → send: the send must depend on the chain.
        let a = analyzed_ok(
            r#"
            __nv int img[16];
            __lea int st[16];
            task t {
                _call_IO(Capture, Single, img, 4, 4, 7);
                _DMA_copy(img[0], st[0], 16);
                let c = _call_IO(Argmax, Always, st, 16);
                _call_IO(Send, Single, c);
                done;
            }
        "#,
        );
        // ids: capture=1, dma=2, argmax=3, send=4.
        assert_eq!(a.dma_related[&2], vec![1], "DMA related to the capture");
        assert_eq!(a.io_deps[&3], vec![1], "argmax depends on the capture");
        assert_eq!(a.io_deps[&4], vec![3], "send depends on the inference");
    }

    #[test]
    fn lea_statements_are_io_sites_with_lock_names() {
        let a = analyzed_ok(
            r#"
            __lea int x[8];
            __lea int k[4];
            __lea int o[8];
            task dnn {
                lea_conv2d(x, 2, 4, k, 2, 2, o);
                lea_relu(o, 3);
                lea_fc(o, 2, k, x, 2);
                done;
            }
        "#,
        );
        assert_eq!(a.io_sites, 3);
        let names: Vec<&String> = {
            let mut ids: Vec<&u32> = a.lock_names.keys().collect();
            ids.sort();
            ids.iter().map(|i| &a.lock_names[i]).collect()
        };
        assert_eq!(
            names,
            vec!["lock_Conv2d_dnn_0", "lock_Relu_dnn_0", "lock_Fc_dnn_0"]
        );
    }
}
