//! easec — the EaseIO compiler front-end (paper §4.5).
//!
//! The original EaseIO ships a Clang LibTooling pass that rewrites annotated
//! C. This crate reproduces the front-end's *whole pipeline* on the paper's
//! task language:
//!
//! 1. [`lexer`] / [`parser`] — parse programs written with the paper's
//!    constructs verbatim: `_call_IO(name, Type, args…)`,
//!    `_IO_block_begin(Type)` / `_IO_block_end`,
//!    `_DMA_copy(src, dst, words)`, `__nv` declarations, tasks, `next`.
//! 2. [`mod@analyze`] — the semantic analysis of §4.5: number the call sites
//!    (`lock_##fn##task##num`), and infer **data dependencies** by tainting
//!    values from `_call_IO` results through locals and task-shared
//!    variables to later `_call_IO` arguments (§3.3.2) and `_DMA_copy`
//!    sources (§4.3.1, the `RelatedConstFlag` wiring) — automating what the
//!    runtime API alone leaves to the programmer.
//! 3. [`transform`] — emits the transformed source the paper's Figure 5
//!    shows: lock-flag `if` structures, private output copies, timestamps.
//!    (Documentation artifact; execution uses the same decisions via the
//!    runtime.)
//! 4. [`mod@lower`] — compiles the analyzed program into a runnable
//!    [`kernel::App`]: task bodies interpret the AST against a [`TaskCtx`],
//!    passing the inferred dependencies into `call_io_dep` /
//!    `dma_copy_annotated` automatically.
//!
//! ```
//! use easec::compile;
//! use mcu_emu::{Mcu, Supply};
//!
//! let src = r#"
//!     __nv int temp;
//!     task sense {
//!         temp = _call_IO(Temp, Timely, 10);
//!         compute(500);
//!         done;
//!     }
//! "#;
//! let mut mcu = Mcu::new(Supply::continuous());
//! let compiled = compile(src, &mut mcu).expect("compiles");
//! assert_eq!(compiled.app.tasks.len(), 1);
//! ```
//!
//! [`TaskCtx`]: kernel::TaskCtx

pub mod analyze;
pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod printer;
pub mod transform;

pub use analyze::{analyze, Analysis};
pub use ast::Program;
pub use lower::{lower, Compiled};
pub use parser::parse;

/// A front-end error with a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

/// Full pipeline: parse → analyze → lower onto `mcu`.
pub fn compile(source: &str, mcu: &mut mcu_emu::Mcu) -> Result<Compiled, CompileError> {
    let mut program = parse(source)?;
    let analysis = analyze(&mut program)?;
    lower(&program, &analysis, mcu)
}

/// Parse → analyze → pretty-print the Figure-5 transformation.
pub fn transform_source(source: &str) -> Result<String, CompileError> {
    let mut program = parse(source)?;
    let analysis = analyze(&mut program)?;
    Ok(transform::transform(&program, &analysis))
}
