//! The runtime interface: privatization and I/O re-execution policy.
//!
//! Every intermittent runtime — the Alpaca and InK baselines here, EaseIO in
//! the `easeio-core` crate — implements [`Runtime`]. The executor and the
//! task context route every observable action through this trait:
//!
//! * CPU accesses to non-volatile variables (`read_var` / `write_var`) so
//!   the runtime can privatize;
//! * task lifecycle events (`on_task_entry` / `on_task_commit`) so it can
//!   restore and commit;
//! * `_call_IO`, `_IO_block_begin/end`, and `_DMA_copy` so it can apply
//!   re-execution semantics.
//!
//! The trait deliberately has no notion of "what the compiler knew": each
//! runtime learns variable sets dynamically at first access, which is
//! semantically equivalent to the static instrumentation the original
//! systems generate (see DESIGN.md §2 for the argument).

use crate::error::{Fault, IoFailure};
use crate::io::IoOp;
use crate::semantics::{DmaAnnotation, ReexecSemantics, TaskId};
use mcu_emu::{Addr, Mcu, PowerFailure, RawVar};
use periph::Peripherals;

/// Result of a `_call_IO` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoOutcome {
    /// The operation's value (executed fresh or restored from the private
    /// output copy).
    pub value: i32,
    /// Whether the peripheral actually ran (false = skipped/restored).
    pub executed: bool,
}

/// Result of a `_DMA_copy` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaOutcome {
    /// Whether a transfer into the destination happened this call.
    pub executed: bool,
}

/// An intermittent-computing runtime.
pub trait Runtime {
    /// Runtime name for reports ("Alpaca", "InK", "EaseIO", ...).
    fn name(&self) -> &'static str;

    /// Called each time a task body is (re-)entered. `reexecution` is true
    /// when this activation already had at least one failed attempt.
    fn on_task_entry(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        reexecution: bool,
    ) -> Result<(), PowerFailure>;

    /// Price of committing `task`: everything the commit will write
    /// (published privates, cleared flags). The executor folds its own
    /// execution-pointer update into the same atomic step, so a power
    /// failure either aborts the whole commit (the task re-executes with
    /// its flags intact) or none of it — splitting them would corrupt
    /// memory the same way the paper's Figure 2b does.
    fn commit_cost(&self, mcu: &Mcu, task: TaskId) -> mcu_emu::Cost;

    /// Applies the commit's memory effects. Infallible: the cost was
    /// already paid via [`Runtime::commit_cost`].
    fn commit_apply(&mut self, mcu: &mut Mcu, task: TaskId);

    /// Convenience: price and apply the commit as one atomic step (used by
    /// unit tests; the executor calls the two halves itself so it can fold
    /// in the execution-pointer write).
    fn on_task_commit(&mut self, mcu: &mut Mcu, task: TaskId) -> Result<(), PowerFailure> {
        let c = self.commit_cost(mcu, task);
        mcu.spend(mcu_emu::WorkKind::Overhead, c)?;
        self.commit_apply(mcu, task);
        Ok(())
    }

    /// CPU read of a non-volatile application variable.
    fn read_var(&mut self, mcu: &mut Mcu, task: TaskId, var: RawVar) -> Result<u64, PowerFailure>;

    /// CPU write of a non-volatile application variable.
    fn write_var(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        var: RawVar,
        raw: u64,
    ) -> Result<(), PowerFailure>;

    /// `_call_IO(op, sem)` at call site `site` (sequence index within the
    /// task body). `deps` lists earlier call sites whose outputs feed this
    /// operation (paper §3.3.2).
    ///
    /// A transient peripheral fault surfaces as [`IoFailure::Fault`] — the
    /// task context's retry loop consumes it; it never reaches the task
    /// body. A runtime whose completion record was already paid for may
    /// instead *absorb* a post-effect fault (radio NACK) and return `Ok`,
    /// which is what keeps `Single` operations effect-idempotent under
    /// retry.
    #[allow(clippy::too_many_arguments)]
    fn io_call(
        &mut self,
        mcu: &mut Mcu,
        periph: &mut Peripherals,
        task: TaskId,
        site: u16,
        op: &IoOp,
        sem: ReexecSemantics,
        deps: &[u16],
    ) -> Result<IoOutcome, IoFailure>;

    /// Last-resort value for a `Timely` operation whose transient-fault
    /// retry budget is exhausted: `Ok(Some(v))` serves `v` in place of a
    /// fresh reading, `Ok(None)` refuses and the task faults.
    ///
    /// `last` is the harness-cached `(value, age_us)` of the site's most
    /// recent successful execution. The default — a baseline runtime with
    /// no persistent freshness metadata — serves it *blindly*, stale or
    /// not; the crash sweep's `degraded_staleness_exceeded` probe exists to
    /// catch exactly that. EaseIO overrides this with a check of its
    /// FRAM-resident timestamp and refuses values older than Δ.
    fn degraded_fallback(
        &mut self,
        _mcu: &mut Mcu,
        _task: TaskId,
        _site: u16,
        _window_us: u64,
        last: Option<(i32, u64)>,
    ) -> Result<Option<i32>, PowerFailure> {
        Ok(last.map(|(v, _)| v))
    }

    /// `_IO_block_begin(sem)`; `block` is the block's sequence index.
    fn io_block_begin(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        block: u16,
        sem: ReexecSemantics,
    ) -> Result<(), PowerFailure>;

    /// `_IO_block_end` for the innermost open block.
    fn io_block_end(&mut self, mcu: &mut Mcu, task: TaskId) -> Result<(), PowerFailure>;

    /// `_DMA_copy(src, dst, bytes)` at DMA site `site`. `related` names the
    /// I/O call sites whose outputs the copied data depends on — the
    /// `RelatedConstFlag` wiring of paper §4.3.1 (the compiler front-end
    /// infers these; hand-written apps may pass them explicitly).
    ///
    /// Returns a [`Fault`] rather than a bare [`PowerFailure`] because a
    /// transfer can also fail on a non-recoverable resource error (pool
    /// exhaustion, oversized shared-slot copy).
    #[allow(clippy::too_many_arguments)]
    fn dma_copy(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        site: u16,
        src: Addr,
        dst: Addr,
        bytes: u32,
        annotation: DmaAnnotation,
        related: &[u16],
    ) -> Result<DmaOutcome, Fault>;

    /// Fixed per-reboot overhead charged on every boot (restoring the
    /// execution pointer, re-initializing the runtime).
    fn boot_cost(&self) -> mcu_emu::Cost {
        mcu_emu::Cost::new(60, 90)
    }
}
