//! Unified kernel construction: one [`KernelKind`] names every runtime the
//! stack knows, one [`KernelBuilder`] instantiates it.
//!
//! Before this module each caller picked a concrete constructor by hand
//! (`AlpacaRuntime::new()`, `InkRuntime::new()`, …) and the simulator CLI
//! plumbed the choice through ad-hoc flags. The builder makes the kernel a
//! *value*: a `KernelKind` travels inside a `ScenarioSpec`, is `Copy + Send`,
//! and every layer — serial runs, the crash sweep, the parallel execution
//! engine's worker threads — constructs runtimes the same way.
//!
//! The EaseIO runtime itself lives upstream of this crate (`easeio-core`
//! depends on `kernel`, not the other way around), so the builder carries an
//! optional [`KernelFactory`] extension slot: `apps::harness` installs a
//! factory that knows how to build EaseIO, while the three in-crate
//! baselines build directly. Asking the bare builder for an EaseIO kernel is
//! a programming error and panics with a pointer to the standard factory.

use crate::alpaca::AlpacaRuntime;
use crate::ink::InkRuntime;
use crate::naive::NaiveRuntime;
use crate::retry::FaultSpec;
use crate::runtime::Runtime;
use std::sync::Arc;

/// Which kernel (runtime) executes the task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// No privatization at all (didactic lower bound).
    Naive,
    /// Alpaca baseline.
    Alpaca,
    /// InK baseline.
    Ink,
    /// EaseIO.
    EaseIo,
    /// EaseIO with `Exclude`-annotated constant DMAs ("EaseIO/Op"). The
    /// runtime is the same; callers must pair this with an app built with
    /// `exclude_const_dma = true`.
    EaseIoOp,
}

impl KernelKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Naive => "Naive",
            KernelKind::Alpaca => "Alpaca",
            KernelKind::Ink => "InK",
            KernelKind::EaseIo => "EaseIO",
            KernelKind::EaseIoOp => "EaseIO/Op",
        }
    }

    /// Stable lowercase CLI name (`--runtime`/`--kernel` values).
    pub fn cli_name(self) -> &'static str {
        match self {
            KernelKind::Naive => "naive",
            KernelKind::Alpaca => "alpaca",
            KernelKind::Ink => "ink",
            KernelKind::EaseIo => "easeio",
            KernelKind::EaseIoOp => "easeio-op",
        }
    }

    /// Parses a CLI name produced by [`KernelKind::cli_name`].
    pub fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "naive" => KernelKind::Naive,
            "alpaca" => KernelKind::Alpaca,
            "ink" => KernelKind::Ink,
            "easeio" => KernelKind::EaseIo,
            "easeio-op" => KernelKind::EaseIoOp,
            other => return Err(format!("unknown runtime {other}")),
        })
    }

    /// Whether apps should be built with `exclude_const_dma`.
    pub fn excludes_const_dma(self) -> bool {
        self == KernelKind::EaseIoOp
    }

    /// Whether OTA-capable apps should apply updates through the two-phase
    /// shadow-slot protocol ([`crate::update::UpdateStore`]). Only the
    /// naive kernel models a protocol-free device that rewrites its live
    /// image in place — the didactic lower bound the `version_torn` sweep
    /// pins as unsafe.
    pub fn two_phase_update(self) -> bool {
        self != KernelKind::Naive
    }

    /// The three runtimes the paper's figures compare.
    pub const PAPER_SET: [KernelKind; 3] =
        [KernelKind::Alpaca, KernelKind::Ink, KernelKind::EaseIo];

    /// Every kernel, in canonical report order.
    pub const ALL: [KernelKind; 5] = [
        KernelKind::Naive,
        KernelKind::Alpaca,
        KernelKind::Ink,
        KernelKind::EaseIo,
        KernelKind::EaseIoOp,
    ];
}

/// Extension hook constructing kernels defined upstream of this crate.
/// Returns `None` for kinds it does not handle. `Send + Sync` so one factory
/// serves every worker thread of the parallel engine.
pub type KernelFactory = Arc<dyn Fn(KernelKind) -> Option<Box<dyn Runtime>> + Send + Sync>;

/// Builds kernel instances from a [`KernelKind`].
#[derive(Clone)]
pub struct KernelBuilder {
    kind: KernelKind,
    factory: Option<KernelFactory>,
    fault: FaultSpec,
}

impl std::fmt::Debug for KernelBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelBuilder")
            .field("kind", &self.kind)
            .field("has_factory", &self.factory.is_some())
            .field("fault", &self.fault)
            .finish()
    }
}

impl KernelBuilder {
    /// A builder for `kind` with no extension factory: it can construct the
    /// three kernels defined in this crate.
    pub fn new(kind: KernelKind) -> Self {
        Self {
            kind,
            factory: None,
            fault: FaultSpec::none(),
        }
    }

    /// The kind this builder constructs.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Sets the transient-fault configuration runs under this builder use.
    pub fn with_faults(mut self, fault: FaultSpec) -> Self {
        self.fault = fault;
        self
    }

    /// The transient-fault configuration (plan + retry policy).
    pub fn fault(&self) -> FaultSpec {
        self.fault
    }

    /// Installs an extension factory consulted before the in-crate kernels
    /// (`apps::harness::standard_factory` wires up EaseIO).
    pub fn with_factory(mut self, factory: KernelFactory) -> Self {
        self.factory = Some(factory);
        self
    }

    /// Instantiates a fresh kernel. Each run gets its own instance — kernels
    /// carry per-run state (locks, private copies, activation bookkeeping).
    pub fn build(&self) -> Box<dyn Runtime> {
        if let Some(factory) = &self.factory {
            if let Some(rt) = factory(self.kind) {
                return rt;
            }
        }
        match self.kind {
            KernelKind::Naive => Box::new(NaiveRuntime::new()),
            KernelKind::Alpaca => Box::new(AlpacaRuntime::new()),
            KernelKind::Ink => Box::new(InkRuntime::new()),
            KernelKind::EaseIo | KernelKind::EaseIoOp => panic!(
                "the EaseIO kernel lives upstream of the kernel crate; install a factory \
                 (e.g. apps::harness::standard_factory) on this KernelBuilder"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_crate_kernels_without_a_factory() {
        for kind in [KernelKind::Naive, KernelKind::Alpaca, KernelKind::Ink] {
            let rt = KernelBuilder::new(kind).build();
            assert_eq!(rt.name(), kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "factory")]
    fn easeio_without_a_factory_panics_with_guidance() {
        KernelBuilder::new(KernelKind::EaseIo).build();
    }

    #[test]
    fn factory_takes_precedence_and_falls_through() {
        let factory: KernelFactory = Arc::new(|kind| match kind {
            // Stand-in: pretend Naive is an externally provided kernel.
            KernelKind::EaseIo => Some(Box::new(NaiveRuntime::new()) as Box<dyn Runtime>),
            _ => None,
        });
        let rt = KernelBuilder::new(KernelKind::EaseIo)
            .with_factory(factory.clone())
            .build();
        assert_eq!(rt.name(), "Naive");
        // Unhandled kinds fall through to the in-crate constructors.
        let rt = KernelBuilder::new(KernelKind::Alpaca)
            .with_factory(factory)
            .build();
        assert_eq!(rt.name(), "Alpaca");
    }

    #[test]
    fn cli_names_round_trip() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::parse(kind.cli_name()), Ok(kind));
        }
        assert!(KernelKind::parse("quantum").is_err());
    }
}
