//! Typed fault model for task execution.
//!
//! A task attempt can be interrupted by three kinds of events: a power
//! failure (the normal course of intermittent execution — the executor
//! reboots and re-enters the task), a runtime resource fault such as an
//! exhausted DMA privatization pool (a configuration error — retrying
//! cannot help, so the executor aborts the run and reports it), and an
//! unrecoverable peripheral I/O fault (the retry budget of a transient
//! [`IoFault`] was exhausted and no semantics-preserving degradation was
//! available). All propagate with `?` out of task bodies as a [`Fault`].
//!
//! Transient faults use a separate, narrower channel: a single faulted
//! *attempt* surfaces as [`IoFailure::Fault`] out of the I/O execution
//! layer and is consumed by the task context's retry loop; only exhaustion
//! becomes a terminal [`IoError`] inside [`Fault::Io`].

use mcu_emu::PowerFailure;
use periph::FaultKind;

/// A non-recoverable DMA configuration error.
///
/// Unlike a [`PowerFailure`], re-executing the task cannot clear a
/// `DmaError`: the privatization pool and slot sizes are fixed at runtime
/// construction, so the same transfer fails the same way on every attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// The privatization pool cannot hold another buffer.
    PoolExhausted {
        /// Bytes the transfer needed.
        requested: u32,
        /// Bytes already in use.
        used: u32,
        /// Configured pool size.
        limit: u32,
    },
    /// A transfer is larger than the shared privatization slot.
    OversizedTransfer {
        /// Bytes the transfer needed.
        bytes: u32,
        /// Configured shared-slot size.
        slot_bytes: u32,
    },
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::PoolExhausted {
                requested,
                used,
                limit,
            } => write!(
                f,
                "DMA privatization pool exhausted: {used} + {requested} B exceeds the configured {limit} B"
            ),
            DmaError::OversizedTransfer { bytes, slot_bytes } => write!(
                f,
                "DMA copy of {bytes} B exceeds the shared privatization slot of {slot_bytes} B"
            ),
        }
    }
}

/// One faulted physical attempt of a peripheral operation: transient, and
/// consumed by the task context's retry loop rather than propagated to the
/// executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFault {
    /// What went wrong on the peripheral.
    pub kind: FaultKind,
    /// The operation's kind name (`"send"`, `"temp"`, …).
    pub op: &'static str,
    /// Whether the external effect still happened (a radio NACK: the packet
    /// is in the air, only the acknowledgement is lost). A runtime that
    /// pre-charged its completion record can absorb such a fault without
    /// ever re-running the effect.
    pub effect_done: bool,
    /// The operation's value, valid only when `effect_done` is true.
    pub value: i32,
}

/// Why one attempt of an I/O operation did not complete: the power died
/// mid-operation, or the peripheral faulted transiently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFailure {
    /// Power failure during the attempt.
    Power(PowerFailure),
    /// A transient peripheral fault; retrying may succeed.
    Fault(IoFault),
}

impl From<PowerFailure> for IoFailure {
    fn from(p: PowerFailure) -> Self {
        IoFailure::Power(p)
    }
}

/// A terminal I/O error: the transient-fault retry budget was exhausted
/// and the operation's semantics admitted no degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError {
    /// The last attempt's fault kind.
    pub kind: FaultKind,
    /// The operation's kind name.
    pub op: &'static str,
    /// Task containing the call site.
    pub task: u16,
    /// Call-site index within the task.
    pub site: u16,
    /// Faulted attempts consumed before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "I/O operation '{}' at task {} site {} failed ({}) after {} attempts",
            self.op,
            self.task,
            self.site,
            self.kind.name(),
            self.attempts
        )
    }
}

/// Why a task attempt stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Power failed; the executor reboots and re-executes the task.
    Power(PowerFailure),
    /// A DMA resource fault; the executor aborts the run.
    Dma(DmaError),
    /// An unrecoverable peripheral I/O fault; the executor aborts the run.
    Io(IoError),
}

impl From<PowerFailure> for Fault {
    fn from(p: PowerFailure) -> Self {
        Fault::Power(p)
    }
}

impl From<DmaError> for Fault {
    fn from(e: DmaError) -> Self {
        Fault::Dma(e)
    }
}

impl From<IoError> for Fault {
    fn from(e: IoError) -> Self {
        Fault::Io(e)
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Power(_) => write!(f, "power failure"),
            Fault::Dma(e) => write!(f, "{e}"),
            Fault::Io(e) => write!(f, "{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_failure_converts_via_from() {
        let f: Fault = PowerFailure.into();
        assert_eq!(f, Fault::Power(PowerFailure));
    }

    #[test]
    fn display_mentions_the_numbers() {
        let e = DmaError::PoolExhausted {
            requested: 128,
            used: 4000,
            limit: 4096,
        };
        let s = format!("{e}");
        assert!(
            s.contains("4000") && s.contains("128") && s.contains("4096"),
            "{s}"
        );
        let o = DmaError::OversizedTransfer {
            bytes: 512,
            slot_bytes: 256,
        };
        assert!(format!("{o}").contains("512"));
        assert!(format!("{}", Fault::Dma(o)).contains("256"));
    }

    #[test]
    fn io_error_display_names_the_site_and_kind() {
        let e = IoError {
            kind: FaultKind::PacketDrop,
            op: "send",
            task: 8,
            site: 2,
            attempts: 4,
        };
        let s = format!("{}", Fault::Io(e));
        assert!(s.contains("send") && s.contains("packet_drop"), "{s}");
        assert!(s.contains("task 8") && s.contains("site 2") && s.contains("4 attempts"));
    }

    #[test]
    fn io_failure_wraps_power_via_from() {
        let f: IoFailure = PowerFailure.into();
        assert_eq!(f, IoFailure::Power(PowerFailure));
    }
}
