//! Typed fault model for task execution.
//!
//! A task attempt can be interrupted by two kinds of events: a power
//! failure (the normal course of intermittent execution — the executor
//! reboots and re-enters the task) and a runtime resource fault such as an
//! exhausted DMA privatization pool (a configuration error — retrying
//! cannot help, so the executor aborts the run and reports it). Both
//! propagate with `?` out of task bodies as a [`Fault`].

use mcu_emu::PowerFailure;

/// A non-recoverable DMA configuration error.
///
/// Unlike a [`PowerFailure`], re-executing the task cannot clear a
/// `DmaError`: the privatization pool and slot sizes are fixed at runtime
/// construction, so the same transfer fails the same way on every attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// The privatization pool cannot hold another buffer.
    PoolExhausted {
        /// Bytes the transfer needed.
        requested: u32,
        /// Bytes already in use.
        used: u32,
        /// Configured pool size.
        limit: u32,
    },
    /// A transfer is larger than the shared privatization slot.
    OversizedTransfer {
        /// Bytes the transfer needed.
        bytes: u32,
        /// Configured shared-slot size.
        slot_bytes: u32,
    },
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::PoolExhausted {
                requested,
                used,
                limit,
            } => write!(
                f,
                "DMA privatization pool exhausted: {used} + {requested} B exceeds the configured {limit} B"
            ),
            DmaError::OversizedTransfer { bytes, slot_bytes } => write!(
                f,
                "DMA copy of {bytes} B exceeds the shared privatization slot of {slot_bytes} B"
            ),
        }
    }
}

/// Why a task attempt stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Power failed; the executor reboots and re-executes the task.
    Power(PowerFailure),
    /// A DMA resource fault; the executor aborts the run.
    Dma(DmaError),
}

impl From<PowerFailure> for Fault {
    fn from(p: PowerFailure) -> Self {
        Fault::Power(p)
    }
}

impl From<DmaError> for Fault {
    fn from(e: DmaError) -> Self {
        Fault::Dma(e)
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Power(_) => write!(f, "power failure"),
            Fault::Dma(e) => write!(f, "{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_failure_converts_via_from() {
        let f: Fault = PowerFailure.into();
        assert_eq!(f, Fault::Power(PowerFailure));
    }

    #[test]
    fn display_mentions_the_numbers() {
        let e = DmaError::PoolExhausted {
            requested: 128,
            used: 4000,
            limit: 4096,
        };
        let s = format!("{e}");
        assert!(
            s.contains("4000") && s.contains("128") && s.contains("4096"),
            "{s}"
        );
        let o = DmaError::OversizedTransfer {
            bytes: 512,
            slot_bytes: 256,
        };
        assert!(format!("{o}").contains("512"));
        assert!(format!("{}", Fault::Dma(o)).contains("256"));
    }
}
