//! Retry policy and the fault specification threaded through the stack.
//!
//! Transient peripheral faults ([`IoFailure::Fault`](crate::error::IoFailure))
//! are handled *below* the task body, in the task context's retry loop: a
//! bounded number of re-attempts with energy-aware exponential backoff, then
//! a per-semantics degradation (see `TaskCtx::call_io_dep`). The backoff is
//! real work — each wait charges the supply, so a power failure can land
//! mid-retry exactly like it can land mid-operation; the crash sweep walks
//! that product space.
//!
//! [`FaultSpec`] bundles the schedule ([`FaultPlan`]) with the policy so one
//! value travels from the CLI through `ScenarioSpec`, `KernelBuilder`, and the
//! crash sweep down to the executor and peripherals.

use mcu_emu::Cost;
use periph::{FaultPlan, Peripherals};

/// Bounded-retry policy for transient peripheral faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts after the first faulted attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before retry `n` costs `base << (n-1)` µs of low-power wait.
    pub backoff_base_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            backoff_base_us: 40,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retry `n` (1-based): exponential in time,
    /// with energy at roughly one eighth of active draw (LPM wait).
    pub fn backoff_cost(&self, retry: u32) -> Cost {
        let t = self
            .backoff_base_us
            .saturating_mul(1u64 << (retry.saturating_sub(1)).min(16));
        Cost::new(t, t / 8 + 1)
    }
}

/// A complete fault configuration: the deterministic schedule (if any) plus
/// the recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// The transient-fault schedule; `None` disables injection entirely.
    pub plan: Option<FaultPlan>,
    /// Retry/backoff policy applied by the task context.
    pub retry: RetryPolicy,
}

impl FaultSpec {
    /// No faults, default retry policy (the zero-behavior-change default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with the given seed and rate, default retry policy.
    pub fn with_rate(seed: u64, rate_permille: u32) -> Self {
        Self {
            plan: (rate_permille > 0).then_some(FaultPlan::new(seed, rate_permille)),
            retry: RetryPolicy::default(),
        }
    }

    /// Installs the plan (if any) into freshly constructed peripherals.
    pub fn apply(&self, periph: &mut Peripherals) {
        if let Some(plan) = self.plan {
            periph.faults.install(plan);
        }
    }

    /// Compact label for reports: `"off"` or `"seed:rate‰/retries"`.
    pub fn label(&self) -> String {
        match self.plan {
            None => "off".into(),
            Some(p) => format!(
                "{}:{}pm/{}r",
                p.seed, p.rate_permille, self.retry.max_retries
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_charges_energy() {
        let p = RetryPolicy {
            max_retries: 3,
            backoff_base_us: 100,
        };
        assert_eq!(p.backoff_cost(1).time_us, 100);
        assert_eq!(p.backoff_cost(2).time_us, 200);
        assert_eq!(p.backoff_cost(3).time_us, 400);
        assert!(p.backoff_cost(1).energy_nj > 0);
    }

    #[test]
    fn spec_with_zero_rate_is_off() {
        assert_eq!(FaultSpec::with_rate(9, 0).plan, None);
        assert_eq!(FaultSpec::none().label(), "off");
        let spec = FaultSpec::with_rate(9, 50);
        assert!(spec.plan.is_some());
        assert_eq!(spec.label(), "9:50pm/4r");
        let mut periph = Peripherals::new(1);
        spec.apply(&mut periph);
        assert_eq!(periph.faults.plan(), spec.plan);
    }
}
