//! Crash-safe over-the-air task-graph image store.
//!
//! A deployed device holds its task-graph image in FRAM as a *versioned*
//! record: a [`TaskGraphVersion`] (sequence number + content hash) over a
//! payload of graph words. An OTA update must replace that image so that a
//! power failure at **any** energy-spend boundary leaves the device on
//! exactly the old or the new version — never a torn mix (Surbatovich et
//! al.'s old-or-new correctness frame).
//!
//! [`UpdateStore`] implements the safe protocol in two phases over two FRAM
//! slots plus a single commit word:
//!
//! 1. **Stage** — write the new payload into the *shadow* slot (the one the
//!    commit word does not select), then seal its header: hash first, the
//!    sequence number last. Nothing in the active slot is touched, so a
//!    crash anywhere in this phase is invisible to recovery.
//! 2. **Flip** — a single [`Mcu::store_var`] of the commit word. The
//!    emulator pays the access cost *before* applying the store, so the
//!    word — and therefore the active version — is old-or-new atomically
//!    with respect to power failures.
//!
//! The store also provides the unsafe baseline ([`UpdateStore::
//! write_in_place`]): header first, then payload words over the live image,
//! which is how a protocol-free device would apply an update. A crash
//! mid-payload strands a header that claims the new version over a mixed
//! payload; [`UpdateStore::recover_check`] detects exactly that state by
//! re-hashing the active payload against its header and bumps the
//! `probe_version_torn` counter the crash sweep's `version_torn` invariant
//! watches.
//!
//! Every charged access runs inside a [`mcu_emu::EnergyCause::UpdateStage`]
//! attribution scope, so the energy cost of evolving the firmware shows up
//! as its own ledger entry rather than polluting runtime overhead.

use mcu_emu::{AllocTag, EnergyCause, Mcu, Memory, NvBuf, NvVar, PowerFailure, Region, WorkKind};

/// Counter bumped when recovery finds the active image incoherent (header
/// hash does not match the payload). The crash sweep's `version_torn`
/// invariant requires it to stay zero.
pub const PROBE_VERSION_TORN: &str = "probe_version_torn";

/// Counter bumped when the same sequence number is activation-notified
/// twice — the observable a fleet rollout counts as a duplicate activation.
pub const PROBE_DUPLICATE_ACTIVATION: &str = "probe_update_duplicate_activation";

/// Marker counter apps bump on entering the stage→flip→activate window.
/// The update-aware sweep mode reads it from the boundary trace to select
/// injection points inside the window.
pub const UPDATE_WINDOW_ENTER: &str = "update_window_enter";

/// Marker counter apps bump after the activation step completes.
pub const UPDATE_WINDOW_EXIT: &str = "update_window_exit";

/// Identity of one task-graph image: monotone sequence number plus a hash
/// binding the sequence number to the payload contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskGraphVersion {
    /// Monotone update sequence number (higher wins).
    pub seq: u32,
    /// [`graph_hash`] of `(seq, payload)`.
    pub hash: u32,
}

/// FNV-1a over the sequence number and the payload words. Binding `seq`
/// into the hash is what catches the header-first torn state: after a
/// crash between the in-place header write and the payload words, the
/// stored hash commits to a `(seq, payload)` pair that no longer exists.
pub fn graph_hash(seq: u32, words: impl IntoIterator<Item = u32>) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut mix = |w: u32| {
        for b in w.to_le_bytes() {
            h = (h ^ b as u32).wrapping_mul(0x0100_0193);
        }
    };
    mix(seq);
    for w in words {
        mix(w);
    }
    h
}

/// One image slot: header (sequence, hash, length) plus payload capacity.
#[derive(Debug, Clone, Copy)]
struct Slot {
    seq: NvVar<u32>,
    hash: NvVar<u32>,
    len: NvVar<u32>,
    payload: NvBuf<u32>,
}

impl Slot {
    fn alloc(mem: &mut Memory, capacity: u32) -> Self {
        Self {
            seq: NvVar::alloc_tagged(mem, Region::Fram, AllocTag::Runtime),
            hash: NvVar::alloc_tagged(mem, Region::Fram, AllocTag::Runtime),
            len: NvVar::alloc_tagged(mem, Region::Fram, AllocTag::Runtime),
            payload: NvBuf::alloc_tagged(mem, Region::Fram, capacity, AllocTag::Runtime),
        }
    }
}

/// The versioned task-graph image in FRAM: two slots, one commit word
/// selecting the active slot, and the activation bookkeeping word. All
/// allocations carry [`AllocTag::Runtime`], so the strict-memory sweep
/// compare (which diffs app-tagged FRAM) is not disturbed by in-flight
/// staging state.
#[derive(Debug, Clone, Copy)]
pub struct UpdateStore {
    slots: [Slot; 2],
    /// The commit word: index (0 or 1) of the active slot. Flipping this
    /// single word is the whole of phase two.
    commit: NvVar<u32>,
    /// Sequence number most recently activation-notified, for the
    /// duplicate-activation probe.
    last_activated: NvVar<u32>,
    capacity: u32,
}

impl UpdateStore {
    /// Allocates both slots with `capacity` payload words each.
    pub fn alloc(mem: &mut Memory, capacity: u32) -> Self {
        Self {
            slots: [Slot::alloc(mem, capacity), Slot::alloc(mem, capacity)],
            commit: NvVar::alloc_tagged(mem, Region::Fram, AllocTag::Runtime),
            last_activated: NvVar::alloc_tagged(mem, Region::Fram, AllocTag::Runtime),
            capacity,
        }
    }

    /// Payload capacity of each slot, in words.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Build-time installation of the factory image into slot 0 (uncharged:
    /// this models the image the device shipped with, not a runtime write).
    pub fn install_initial(&self, mem: &mut Memory, seq: u32, payload: &[u32]) {
        assert!(
            payload.len() as u32 <= self.capacity,
            "payload exceeds slot"
        );
        let s = &self.slots[0];
        s.seq.set(mem, seq);
        s.hash.set(mem, graph_hash(seq, payload.iter().copied()));
        s.len.set(mem, payload.len() as u32);
        s.payload.fill_from(mem, payload);
        self.commit.set(mem, 0);
        self.last_activated.set(mem, seq);
    }

    /// Active version straight from memory, uncharged — for verify closures
    /// and report plumbing, not for task bodies.
    pub fn version_unchecked(&self, mem: &Memory) -> TaskGraphVersion {
        let s = &self.slots[(self.commit.get(mem) as usize) & 1];
        TaskGraphVersion {
            seq: s.seq.get(mem),
            hash: s.hash.get(mem),
        }
    }

    /// Whether the active image is coherent (header hash matches the
    /// payload), uncharged — the verify-closure twin of [`recover_check`].
    ///
    /// [`recover_check`]: UpdateStore::recover_check
    pub fn coherent_unchecked(&self, mem: &Memory) -> bool {
        let s = &self.slots[(self.commit.get(mem) as usize) & 1];
        let len = s.len.get(mem).min(self.capacity);
        let words = (0..len).map(|i| s.payload.get(mem, i));
        graph_hash(s.seq.get(mem), words) == s.hash.get(mem)
    }

    /// Charged load of the commit word: index of the active slot.
    pub fn active_slot(&self, mcu: &mut Mcu) -> Result<u32, PowerFailure> {
        let raw = mcu.with_cause(EnergyCause::UpdateStage, |m| {
            m.load_var(WorkKind::Overhead, self.commit.raw())
        })?;
        Ok((raw as u32) & 1)
    }

    /// Charged read of the active image's version header.
    pub fn active_version(&self, mcu: &mut Mcu) -> Result<TaskGraphVersion, PowerFailure> {
        let s = self.slots[self.active_slot(mcu)? as usize];
        mcu.with_cause(EnergyCause::UpdateStage, |m| {
            Ok(TaskGraphVersion {
                seq: m.load_var(WorkKind::Overhead, s.seq.raw())? as u32,
                hash: m.load_var(WorkKind::Overhead, s.hash.raw())? as u32,
            })
        })
    }

    /// Recovery entry point: re-hashes the active payload against its
    /// header. Any mismatch means the device rebooted into a torn image —
    /// the state the two-phase protocol makes unreachable — and bumps
    /// [`PROBE_VERSION_TORN`]. Returns the active version either way.
    ///
    /// Tasks that touch the update store call this at their top: the
    /// executor resumes the *current* task after a power failure, so the
    /// check runs on every reboot path through the update window.
    pub fn recover_check(&self, mcu: &mut Mcu) -> Result<TaskGraphVersion, PowerFailure> {
        let s = self.slots[self.active_slot(mcu)? as usize];
        mcu.with_cause(EnergyCause::UpdateStage, |m| {
            let seq = m.load_var(WorkKind::Overhead, s.seq.raw())? as u32;
            let hash = m.load_var(WorkKind::Overhead, s.hash.raw())? as u32;
            let len = (m.load_var(WorkKind::Overhead, s.len.raw())? as u32).min(self.capacity);
            let mut words = Vec::with_capacity(len as usize);
            for i in 0..len {
                words.push(m.load_var(WorkKind::Overhead, s.payload.slot(i))? as u32);
            }
            if graph_hash(seq, words) != hash {
                m.stats.bump(PROBE_VERSION_TORN);
            }
            Ok(TaskGraphVersion { seq, hash })
        })
    }

    /// Phase one, step one: open the shadow slot for staging. Invalidates
    /// the shadow header (sequence 0 never activates) and records the
    /// incoming length. Idempotent — a re-executed staging task simply
    /// starts over.
    pub fn begin_stage(&self, mcu: &mut Mcu, len: u32) -> Result<(), PowerFailure> {
        assert!(len <= self.capacity, "staged payload exceeds slot capacity");
        let s = self.slots[(self.active_slot(mcu)? as usize) ^ 1];
        mcu.with_cause(EnergyCause::UpdateStage, |m| {
            m.store_var(WorkKind::Overhead, s.seq.raw(), 0)?;
            m.store_var(WorkKind::Overhead, s.len.raw(), len as u64)
        })
    }

    /// Phase one, step two: write one chunk of payload words at `offset`
    /// into the shadow slot.
    pub fn stage_chunk(
        &self,
        mcu: &mut Mcu,
        offset: u32,
        words: &[u32],
    ) -> Result<(), PowerFailure> {
        let s = self.slots[(self.active_slot(mcu)? as usize) ^ 1];
        mcu.with_cause(EnergyCause::UpdateStage, |m| {
            for (i, &w) in words.iter().enumerate() {
                m.store_var(
                    WorkKind::Overhead,
                    s.payload.slot(offset + i as u32),
                    w as u64,
                )?;
            }
            Ok(())
        })
    }

    /// Phase one, step three: seal the shadow image. Re-reads the staged
    /// payload (charged), stores the binding hash, and stores the sequence
    /// number **last** — until that final word lands, the shadow can never
    /// win the activation comparison, so a crash anywhere inside sealing
    /// leaves the update simply "not yet staged".
    pub fn seal_stage(&self, mcu: &mut Mcu, seq: u32) -> Result<(), PowerFailure> {
        let s = self.slots[(self.active_slot(mcu)? as usize) ^ 1];
        mcu.with_cause(EnergyCause::UpdateStage, |m| {
            let len = (m.load_var(WorkKind::Overhead, s.len.raw())? as u32).min(self.capacity);
            let mut words = Vec::with_capacity(len as usize);
            for i in 0..len {
                words.push(m.load_var(WorkKind::Overhead, s.payload.slot(i))? as u32);
            }
            let hash = graph_hash(seq, words);
            m.store_var(WorkKind::Overhead, s.hash.raw(), hash as u64)?;
            m.store_var(WorkKind::Overhead, s.seq.raw(), seq as u64)
        })
    }

    /// Phase two: flip the commit word to the shadow slot iff the shadow
    /// holds a strictly newer sealed image. The flip is one word store —
    /// crash-atomic — and the guard makes re-execution after the flip a
    /// no-op, so the whole activation is idempotent. Returns whether this
    /// call performed the flip.
    pub fn activate(&self, mcu: &mut Mcu) -> Result<bool, PowerFailure> {
        let active = self.active_slot(mcu)?;
        let shadow = self.slots[(active as usize) ^ 1];
        let cur = self.slots[active as usize];
        mcu.with_cause(EnergyCause::UpdateStage, |m| {
            let staged = m.load_var(WorkKind::Overhead, shadow.seq.raw())? as u32;
            let current = m.load_var(WorkKind::Overhead, cur.seq.raw())? as u32;
            if staged <= current {
                return Ok(false);
            }
            m.store_var(WorkKind::Overhead, self.commit.raw(), (active ^ 1) as u64)?;
            Ok(true)
        })
    }

    /// Records that `seq` went live. Calling it twice for one sequence
    /// number bumps [`PROBE_DUPLICATE_ACTIVATION`] — under the two-phase
    /// protocol the [`activate`](UpdateStore::activate) guard means only
    /// the flipping execution notifies, so the counter stays zero; a
    /// protocol-free baseline re-notifies on every re-execution. Returns
    /// whether this call was the first notification.
    pub fn note_activation(&self, mcu: &mut Mcu, seq: u32) -> Result<bool, PowerFailure> {
        mcu.with_cause(EnergyCause::UpdateStage, |m| {
            let last = m.load_var(WorkKind::Overhead, self.last_activated.raw())? as u32;
            if last == seq {
                m.stats.bump(PROBE_DUPLICATE_ACTIVATION);
                return Ok(false);
            }
            m.store_var(WorkKind::Overhead, self.last_activated.raw(), seq as u64)?;
            Ok(true)
        })
    }

    /// The unsafe baseline: apply the update over the **live** image,
    /// header first, then the payload words — no shadow, no commit flip.
    /// A crash after the header but before the last payload word leaves
    /// the active image claiming the new version over mixed contents,
    /// which the next [`recover_check`](UpdateStore::recover_check)
    /// reports as torn.
    pub fn write_in_place(
        &self,
        mcu: &mut Mcu,
        seq: u32,
        payload: &[u32],
    ) -> Result<(), PowerFailure> {
        assert!(
            payload.len() as u32 <= self.capacity,
            "payload exceeds slot"
        );
        let s = self.slots[self.active_slot(mcu)? as usize];
        mcu.with_cause(EnergyCause::UpdateStage, |m| {
            let hash = graph_hash(seq, payload.iter().copied());
            m.store_var(WorkKind::Overhead, s.seq.raw(), seq as u64)?;
            m.store_var(WorkKind::Overhead, s.hash.raw(), hash as u64)?;
            m.store_var(WorkKind::Overhead, s.len.raw(), payload.len() as u64)?;
            for (i, &w) in payload.iter().enumerate() {
                m.store_var(WorkKind::Overhead, s.payload.slot(i as u32), w as u64)?;
            }
            Ok(())
        })
    }

    /// Number of FRAM variables the store allocates (for app inventories).
    pub fn nv_vars(&self) -> u32 {
        // Per slot: seq + hash + len + payload buffer; plus commit word and
        // the activation bookkeeping word.
        2 * 4 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::Supply;

    fn store() -> (Mcu, UpdateStore) {
        let mut mcu = Mcu::new(Supply::continuous());
        let store = UpdateStore::alloc(&mut mcu.mem, 8);
        store.install_initial(&mut mcu.mem, 1, &[11, 22, 33, 44]);
        (mcu, store)
    }

    #[test]
    fn factory_image_is_coherent_and_versioned() {
        let (mut mcu, store) = store();
        assert!(store.coherent_unchecked(&mcu.mem));
        let v = store.recover_check(&mut mcu).unwrap();
        assert_eq!(v.seq, 1);
        assert_eq!(mcu.stats.counter(PROBE_VERSION_TORN), 0);
    }

    #[test]
    fn two_phase_update_flips_exactly_once() {
        let (mut mcu, store) = store();
        let img = [7u32, 8, 9];
        store.begin_stage(&mut mcu, img.len() as u32).unwrap();
        store.stage_chunk(&mut mcu, 0, &img).unwrap();
        store.seal_stage(&mut mcu, 2).unwrap();
        // Staging never disturbs the active image.
        assert_eq!(store.version_unchecked(&mcu.mem).seq, 1);
        assert!(store.coherent_unchecked(&mcu.mem));
        assert!(store.activate(&mut mcu).unwrap());
        assert_eq!(store.version_unchecked(&mcu.mem).seq, 2);
        assert!(store.coherent_unchecked(&mcu.mem));
        // Re-execution of the activation is a guarded no-op.
        assert!(!store.activate(&mut mcu).unwrap());
        assert!(store.note_activation(&mut mcu, 2).unwrap());
        assert!(!store.note_activation(&mut mcu, 2).unwrap());
        assert_eq!(mcu.stats.counter(PROBE_DUPLICATE_ACTIVATION), 1);
    }

    #[test]
    fn interrupted_in_place_write_is_torn_and_detected() {
        let (mut mcu, store) = store();
        // Model the crash by hand: header written, payload not.
        let s = store.slots[0];
        let img = [7u32, 8, 9];
        s.seq.set(&mut mcu.mem, 2);
        s.hash.set(&mut mcu.mem, graph_hash(2, img.iter().copied()));
        s.len.set(&mut mcu.mem, img.len() as u32);
        assert!(!store.coherent_unchecked(&mcu.mem));
        store.recover_check(&mut mcu).unwrap();
        assert_eq!(mcu.stats.counter(PROBE_VERSION_TORN), 1);
        // The completed in-place write converges back to coherence.
        store.write_in_place(&mut mcu, 2, &img).unwrap();
        assert!(store.coherent_unchecked(&mcu.mem));
    }

    #[test]
    fn staging_energy_lands_in_the_update_stage_ledger() {
        let (mut mcu, store) = store();
        let before = mcu.stats.cause_energy_nj[EnergyCause::UpdateStage.index()];
        store.begin_stage(&mut mcu, 2).unwrap();
        store.stage_chunk(&mut mcu, 0, &[5, 6]).unwrap();
        store.seal_stage(&mut mcu, 2).unwrap();
        let after = mcu.stats.cause_energy_nj[EnergyCause::UpdateStage.index()];
        assert!(after > before, "staging must charge the UpdateStage cause");
        assert!(mcu.stats.attribution_balanced());
    }

    #[test]
    fn hash_binds_the_sequence_number() {
        let img = [1u32, 2, 3];
        assert_ne!(
            graph_hash(1, img.iter().copied()),
            graph_hash(2, img.iter().copied())
        );
    }
}
