//! Memory and code-size accounting (paper Table 6).
//!
//! RAM and FRAM numbers are measured exactly from the simulator's allocation
//! records. `.text` cannot be measured without compiling generated C with
//! msp430-gcc, so it is *modeled*: a per-runtime base (the runtime library)
//! plus per-construct increments (the code each task, `_call_IO` site,
//! `_DMA_copy` site, and I/O block expands to). The constants are calibrated
//! so the absolute magnitudes land in the range of the paper's Table 6 and —
//! more importantly — the *ordering* holds: Alpaca smallest, InK's kernel
//! larger, EaseIO ≈ Alpaca + ~1 KB of regional-privatization and DMA-handling
//! code.

use crate::task::Inventory;
use mcu_emu::{AllocTag, Memory, Region};

/// Memory/code footprint of one application under one runtime (bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Modeled code size.
    pub text: u32,
    /// Measured volatile memory (SRAM + LEA-RAM allocations).
    pub ram: u32,
    /// Measured non-volatile memory (FRAM allocations, app + runtime).
    pub fram: u32,
}

/// Per-runtime code-size model constants.
#[derive(Debug, Clone, Copy)]
pub struct CodeModel {
    /// Runtime library base size.
    pub base: u32,
    /// Scheduler/transition code per task.
    pub per_task: u32,
    /// Control block emitted per `_call_IO` site.
    pub per_io_site: u32,
    /// Extra timestamp handling per `Timely` call site (allocation of the
    /// timestamp word, freshness check); zero for runtimes without `Timely`.
    pub per_timely_site: u32,
    /// Handling code per `_DMA_copy` site.
    pub per_dma_site: u32,
    /// Control block per I/O block.
    pub per_block: u32,
    /// Privatization/commit code per task-shared variable.
    pub per_nv_var: u32,
}

impl CodeModel {
    /// Alpaca: slim task library, WAR privatization + commit per variable.
    pub fn alpaca() -> Self {
        Self {
            base: 620,
            per_task: 48,
            per_io_site: 12,
            per_timely_site: 0,
            per_dma_site: 16,
            per_block: 0,
            per_nv_var: 56,
        }
    }

    /// InK: full reactive kernel (scheduler, events, double buffering).
    pub fn ink() -> Self {
        Self {
            base: 2_100,
            per_task: 96,
            per_io_site: 12,
            per_timely_site: 0,
            per_dma_site: 16,
            per_block: 0,
            per_nv_var: 72,
        }
    }

    /// EaseIO: Alpaca-like task core plus the I/O-semantics control blocks,
    /// run-time DMA typing, and regional privatization (~1 KB over Alpaca,
    /// per the paper §5.4.5). Timestamp handling is priced per `Timely`
    /// site, not per I/O site: only `Timely` sites allocate the 8-byte
    /// timestamp word and emit the freshness check (paper §4.2's
    /// per-semantics control blocks).
    pub fn easeio() -> Self {
        Self {
            base: 1_480,
            per_task: 56,
            per_io_site: 62,
            per_timely_site: 36,
            per_dma_site: 158,
            per_block: 88,
            per_nv_var: 64,
        }
    }

    /// Model for a runtime by its `Runtime::name()`.
    pub fn for_runtime(name: &str) -> Self {
        match name {
            "Alpaca" => Self::alpaca(),
            "InK" => Self::ink(),
            "EaseIO" | "EaseIO/Op" => Self::easeio(),
            _ => Self::alpaca(),
        }
    }

    /// Evaluates the model on an application inventory.
    pub fn text_bytes(&self, inv: &Inventory) -> u32 {
        self.base
            + self.per_task * inv.tasks
            + self.per_io_site * inv.io_sites
            + self.per_timely_site * inv.timely_sites
            + self.per_dma_site * inv.dma_sites
            + self.per_block * inv.io_blocks
            + self.per_nv_var * inv.nv_vars
    }
}

/// Computes the full footprint after a run: modeled `.text`, measured RAM
/// and FRAM from the memory allocator.
pub fn footprint(runtime_name: &str, inv: &Inventory, mem: &Memory) -> Footprint {
    let model = CodeModel::for_runtime(runtime_name);
    let ram = mem.allocated(Region::Sram) + mem.allocated(Region::LeaRam);
    let fram = mem.allocated(Region::Fram);
    Footprint {
        text: model.text_bytes(inv),
        ram,
        fram,
    }
}

/// FRAM bytes attributable to runtime metadata only.
pub fn runtime_fram(mem: &Memory) -> u32 {
    mem.allocated_tagged(Region::Fram, AllocTag::Runtime)
        + mem.allocated_tagged(Region::Fram, AllocTag::DmaPrivBuf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> Inventory {
        Inventory {
            tasks: 5,
            io_funcs: 2,
            io_sites: 3,
            timely_sites: 1,
            dma_sites: 3,
            io_blocks: 1,
            nv_vars: 8,
        }
    }

    #[test]
    fn text_ordering_matches_paper() {
        let i = inv();
        let alpaca = CodeModel::alpaca().text_bytes(&i);
        let ink = CodeModel::ink().text_bytes(&i);
        let easeio = CodeModel::easeio().text_bytes(&i);
        assert!(alpaca < ink, "InK's kernel outweighs Alpaca's library");
        assert!(alpaca < easeio, "EaseIO adds control blocks over Alpaca");
        // EaseIO ≈ Alpaca + ~1 KB for a DMA-bearing app (paper §5.4.5).
        let delta = easeio - alpaca;
        assert!(
            (500..=1800).contains(&delta),
            "EaseIO-Alpaca delta {delta} out of the ~1 KB band"
        );
    }

    #[test]
    fn io_free_app_has_tiny_easeio_increment() {
        // "EaseIO loads a 6-byte overhead for the I/O semantic
        // implementation" when there's no DMA — the *code* increment for a
        // single Timely site should likewise be small relative to DMA apps.
        let small = Inventory {
            tasks: 3,
            io_funcs: 1,
            io_sites: 1,
            timely_sites: 1,
            dma_sites: 0,
            io_blocks: 0,
            nv_vars: 2,
        };
        let with_dma = Inventory {
            dma_sites: 3,
            ..small
        };
        let a = CodeModel::easeio().text_bytes(&small);
        let b = CodeModel::easeio().text_bytes(&with_dma);
        assert!(b - a >= 3 * 150, "DMA handling dominates the increment");
    }

    #[test]
    fn timely_sites_priced_only_under_easeio() {
        let without = Inventory {
            timely_sites: 0,
            ..inv()
        };
        let with = inv();
        let e = CodeModel::easeio();
        assert_eq!(
            e.text_bytes(&with) - e.text_bytes(&without),
            e.per_timely_site
        );
        // Baselines have no Timely machinery to emit.
        assert_eq!(
            CodeModel::alpaca().text_bytes(&with),
            CodeModel::alpaca().text_bytes(&without)
        );
        assert_eq!(
            CodeModel::ink().text_bytes(&with),
            CodeModel::ink().text_bytes(&without)
        );
    }

    #[test]
    fn footprint_measures_memory() {
        let mut mem = Memory::new();
        mem.alloc(Region::Fram, 100, AllocTag::App);
        mem.alloc(Region::Fram, 40, AllocTag::Runtime);
        mem.alloc(Region::Sram, 16, AllocTag::App);
        mem.alloc(Region::LeaRam, 8, AllocTag::App);
        let f = footprint("Alpaca", &inv(), &mem);
        assert_eq!(f.fram, 140);
        assert_eq!(f.ram, 24);
        assert_eq!(runtime_fram(&mem), 40);
    }

    #[test]
    fn unknown_runtime_falls_back() {
        let f = CodeModel::for_runtime("Mystery");
        assert_eq!(f.base, CodeModel::alpaca().base);
    }
}
