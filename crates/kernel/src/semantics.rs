//! Re-execution semantics and identifiers (paper §3.1).
//!
//! The three keywords — `Single`, `Timely`, `Always` — are the programmer's
//! annotation vocabulary for peripheral operations. With continuous power
//! they make no difference (each operation executes exactly once); under
//! intermittent power they tell the runtime which completed operations may
//! be skipped when the enclosing task re-executes.

/// Identifies a task within an application (index into `App::tasks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u16);

/// Re-execution semantics for a peripheral operation or I/O block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReexecSemantics {
    /// Execute at most once per task activation: if the operation completed
    /// in a previous power cycle, restore its recorded output instead of
    /// repeating it. For operations whose effect persists (sending a packet,
    /// DMA into non-volatile memory).
    Single,
    /// Repeat only if more than `window_us` µs of wall-clock time (including
    /// dead time) elapsed since the last successful execution. For sensor
    /// data with freshness constraints.
    Timely {
        /// Validity window in microseconds.
        window_us: u64,
    },
    /// Repeat after every reboot — the default behaviour of task-based
    /// systems, kept for operations whose effect is volatile.
    Always,
}

impl ReexecSemantics {
    /// Convenience constructor for a `Timely` window given in milliseconds,
    /// matching the units the paper's examples use.
    pub fn timely_ms(ms: u64) -> Self {
        ReexecSemantics::Timely {
            window_us: ms * 1000,
        }
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ReexecSemantics::Single => "Single",
            ReexecSemantics::Timely { .. } => "Timely",
            ReexecSemantics::Always => "Always",
        }
    }
}

/// Programmer annotation on a `_DMA_copy` call (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DmaAnnotation {
    /// Let the runtime resolve semantics from operand memory types.
    #[default]
    Auto,
    /// The copied data is constant (e.g. filter coefficients): skip the
    /// privatization machinery and treat the transfer as `Always`. This is
    /// the optimization evaluated as "EaseIO/Op" in the paper.
    Exclude,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timely_ms_converts_to_us() {
        assert_eq!(
            ReexecSemantics::timely_ms(10),
            ReexecSemantics::Timely { window_us: 10_000 }
        );
    }

    #[test]
    fn names() {
        assert_eq!(ReexecSemantics::Single.name(), "Single");
        assert_eq!(ReexecSemantics::timely_ms(1).name(), "Timely");
        assert_eq!(ReexecSemantics::Always.name(), "Always");
    }

    #[test]
    fn default_dma_annotation_is_auto() {
        assert_eq!(DmaAnnotation::default(), DmaAnnotation::Auto);
    }
}
