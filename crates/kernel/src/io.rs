//! I/O operation descriptors and their execution.
//!
//! An [`IoOp`] is the unit the `_call_IO` abstraction wraps: a synchronous,
//! arbitrarily-restartable peripheral operation with a price and an `i32`
//! result. Executing one follows the spend-then-mutate rule: the full cost
//! is pushed through the power supply first; the peripheral effect (sample,
//! transmission, vector computation) happens only if the energy was there.
//! This models the paper's assumption that I/O functions are synchronous so
//! completion flags are set strictly after the operation finished (§6).

use crate::error::{IoFailure, IoFault};
use crate::semantics::TaskId;
use mcu_emu::{Addr, Cost, Mcu, PowerFailure, WorkKind};
use periph::{camera, lea, radio, sensors::Sensor, PeriphClass, Peripherals};

/// A peripheral operation invocable through `_call_IO`.
#[derive(Debug, Clone, PartialEq)]
pub enum IoOp {
    /// Sample a sensor; returns the reading.
    Sense(Sensor),
    /// Transmit a payload over the radio; returns the byte count.
    Send {
        /// Payload words captured at call time.
        payload: Vec<i32>,
    },
    /// Capture a deterministic image into `dst`; returns a checksum.
    Capture {
        /// Destination buffer (any region).
        dst: Addr,
        /// Image width in pixels.
        width: u32,
        /// Image height in pixels.
        height: u32,
        /// Scene seed.
        seed: u64,
    },
    /// LEA FIR filter over LEA-RAM buffers; returns the MAC count as i32.
    LeaFir {
        /// Input samples (LEA-RAM), `n_out + taps - 1` elements.
        x: Addr,
        /// Coefficients (LEA-RAM).
        h: Addr,
        /// Output (LEA-RAM).
        y: Addr,
        /// Output length.
        n_out: u32,
        /// Tap count.
        taps: u32,
    },
    /// LEA 2-D valid convolution; returns the MAC count as i32.
    LeaConv2d {
        /// Input image (LEA-RAM).
        input: Addr,
        /// Input width.
        w: u32,
        /// Input height.
        h: u32,
        /// Kernel (LEA-RAM).
        kernel: Addr,
        /// Kernel width.
        kw: u32,
        /// Kernel height.
        kh: u32,
        /// Output (LEA-RAM).
        out: Addr,
    },
    /// LEA in-place ReLU; returns `n`.
    LeaRelu {
        /// Buffer (LEA-RAM).
        buf: Addr,
        /// Element count.
        n: u32,
    },
    /// LEA fully-connected layer; returns the MAC count as i32.
    LeaFc {
        /// Input vector (LEA-RAM).
        x: Addr,
        /// Input length.
        n_in: u32,
        /// Row-major weights (LEA-RAM).
        weights: Addr,
        /// Output vector (LEA-RAM).
        out: Addr,
        /// Output length.
        n_out: u32,
    },
    /// LEA argmax (the inference layer); returns the winning index.
    LeaArgmax {
        /// Buffer (LEA-RAM).
        buf: Addr,
        /// Element count.
        n: u32,
    },
    /// A generic priced operation (the paper emulates some peripherals as
    /// delay loops); returns 0.
    Delay {
        /// Price of the operation.
        cost: Cost,
    },
}

impl IoOp {
    /// The operation's cost from the MCU's calibration table.
    pub fn cost(&self, mcu: &Mcu) -> Cost {
        let t = &mcu.cost;
        match self {
            IoOp::Sense(s) => s.cost(t),
            IoOp::Send { payload } => radio::send_cost(t, payload.len() as u64 * 4),
            IoOp::Capture { width, height, .. } => camera::capture_cost(t, width * height),
            IoOp::LeaFir { n_out, taps, .. } => lea::lea_cost(t, lea::fir_macs(*n_out, *taps)),
            IoOp::LeaConv2d { w, h, kw, kh, .. } => {
                lea::lea_cost(t, lea::conv2d_macs(*w, *h, *kw, *kh))
            }
            IoOp::LeaRelu { n, .. } => lea::lea_cost(t, *n as u64),
            IoOp::LeaFc { n_in, n_out, .. } => lea::lea_cost(t, *n_in as u64 * *n_out as u64),
            IoOp::LeaArgmax { n, .. } => lea::lea_cost(t, *n as u64),
            IoOp::Delay { cost } => *cost,
        }
    }

    /// Short name for reports and counters.
    pub fn kind_name(&self) -> &'static str {
        match self {
            IoOp::Sense(s) => s.name(),
            IoOp::Send { .. } => "send",
            IoOp::Capture { .. } => "capture",
            IoOp::LeaFir { .. } => "lea_fir",
            IoOp::LeaConv2d { .. } => "lea_conv2d",
            IoOp::LeaRelu { .. } => "lea_relu",
            IoOp::LeaFc { .. } => "lea_fc",
            IoOp::LeaArgmax { .. } => "lea_argmax",
            IoOp::Delay { .. } => "delay",
        }
    }

    /// The peripheral class a fault plan schedules this operation under.
    /// `Delay` models a pure busy-wait and cannot fault.
    pub fn periph_class(&self) -> Option<PeriphClass> {
        Some(match self {
            IoOp::Sense(_) => PeriphClass::Sensor,
            IoOp::Send { .. } => PeriphClass::Radio,
            IoOp::Capture { .. } => PeriphClass::Camera,
            IoOp::LeaFir { .. }
            | IoOp::LeaConv2d { .. }
            | IoOp::LeaRelu { .. }
            | IoOp::LeaFc { .. }
            | IoOp::LeaArgmax { .. } => PeriphClass::Lea,
            IoOp::Delay { .. } => return None,
        })
    }
}

/// Executes `op` on the peripherals: charges the full cost as application
/// work, then applies the effect and returns the operation's value.
///
/// Shared by every runtime — the runtimes differ only in *whether* they call
/// this, never in how the operation itself runs. `task`/`site` name the call
/// site for the peripheral fault schedule: if a transient fault is scheduled
/// for this physical attempt, the full cost is still charged (the bus was
/// driven, the accelerator spun) but the attempt ends in
/// [`IoFailure::Fault`]. A radio NACK is the one *post-effect* fault: the
/// packet is transmitted and logged before the error is returned.
pub fn perform_io(
    mcu: &mut Mcu,
    periph: &mut Peripherals,
    op: &IoOp,
    task: TaskId,
    site: u16,
) -> Result<i32, IoFailure> {
    let cost = op.cost(mcu);
    mcu.spend(WorkKind::App, cost)?;
    let now = mcu.now_us();
    // Sensor samples are functions of the current time, and transmitted
    // packets are logged with their send time — both let wall-clock time
    // reach state a sweep compares, which forbids boundary merging.
    if matches!(op, IoOp::Sense(_) | IoOp::Send { .. }) {
        mcu.note_time_observed();
    }
    if let Some(class) = op.periph_class() {
        if let Some(kind) = periph.faults.next_fault(class, task.0, site) {
            mcu.stats.bump("io_faults");
            mcu.stats.bump(kind.name());
            let fault = if kind.effect_done() {
                // Post-effect fault (NACK): the external effect happens.
                let value = match op {
                    IoOp::Send { payload } => {
                        periph.radio.transmit(now, payload);
                        (payload.len() * 4) as i32
                    }
                    _ => unreachable!("only radio faults are post-effect"),
                };
                IoFault {
                    kind,
                    op: op.kind_name(),
                    effect_done: true,
                    value,
                }
            } else {
                IoFault {
                    kind,
                    op: op.kind_name(),
                    effect_done: false,
                    value: 0,
                }
            };
            return Err(IoFailure::Fault(fault));
        }
    }
    mcu.stats.io_executed += 1;
    let value = match op {
        IoOp::Sense(s) => s.sample(&periph.env, now),
        IoOp::Send { payload } => {
            periph.radio.transmit(now, payload);
            (payload.len() * 4) as i32
        }
        IoOp::Capture {
            dst,
            width,
            height,
            seed,
        } => {
            camera::capture(&mut mcu.mem, *dst, *width, *height, *seed);
            // Checksum so callers can branch on the capture like a value.
            let n = width * height;
            let mut sum = 0i32;
            for i in 0..n {
                sum = sum.wrapping_add(camera::scene_pixel(*seed, *width, i) as i32);
            }
            sum
        }
        IoOp::LeaFir {
            x,
            h,
            y,
            n_out,
            taps,
        } => lea::fir(&mut mcu.mem, *x, *h, *y, *n_out, *taps) as i32,
        IoOp::LeaConv2d {
            input,
            w,
            h,
            kernel,
            kw,
            kh,
            out,
        } => lea::conv2d(&mut mcu.mem, *input, *w, *h, *kernel, *kw, *kh, *out) as i32,
        IoOp::LeaRelu { buf, n } => lea::relu(&mut mcu.mem, *buf, *n) as i32,
        IoOp::LeaFc {
            x,
            n_in,
            weights,
            out,
            n_out,
        } => lea::fully_connected(&mut mcu.mem, *x, *n_in, *weights, *out, *n_out) as i32,
        IoOp::LeaArgmax { buf, n } => lea::argmax(&mcu.mem, *buf, *n).0 as i32,
        IoOp::Delay { .. } => 0,
    };
    Ok(value)
}

/// Performs a raw DMA transfer: charges the transfer cost under `kind`,
/// counts it, then moves the bytes. Runtimes call this once they have
/// decided a transfer must actually happen.
pub fn perform_dma(
    mcu: &mut Mcu,
    src: Addr,
    dst: Addr,
    bytes: u32,
    kind: WorkKind,
) -> Result<(), PowerFailure> {
    let cost = periph::dma::transfer_cost(&mcu.cost, bytes);
    mcu.spend(kind, cost)?;
    mcu.stats.dma_executed += 1;
    periph::dma::transfer(&mut mcu.mem, src, dst, bytes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::{AllocTag, Region, Supply};
    use periph::FaultPlan;

    fn setup() -> (Mcu, Peripherals) {
        (Mcu::new(Supply::continuous()), Peripherals::new(7))
    }

    #[test]
    fn sense_returns_environment_reading() {
        let (mut mcu, mut p) = setup();
        let v = perform_io(&mut mcu, &mut p, &IoOp::Sense(Sensor::Temp), TaskId(0), 0).unwrap();
        // The sample is taken at completion time, after the sensing delay.
        assert_eq!(v, p.env.temp_centi_c(mcu.now_us()));
        assert_eq!(mcu.stats.io_executed, 1);
        assert!(mcu.stats.app_time_us >= mcu.cost.sense_temp.time_us);
    }

    #[test]
    fn send_logs_packet() {
        let (mut mcu, mut p) = setup();
        let v = perform_io(
            &mut mcu,
            &mut p,
            &IoOp::Send {
                payload: vec![1, 2, 3],
            },
            TaskId(0),
            0,
        )
        .unwrap();
        assert_eq!(v, 12);
        assert_eq!(p.radio.count(), 1);
        assert_eq!(p.radio.packets()[0].payload, vec![1, 2, 3]);
    }

    #[test]
    fn capture_fills_buffer_and_checksums() {
        let (mut mcu, mut p) = setup();
        let dst = mcu.mem.alloc(Region::Fram, 32, AllocTag::App);
        let v = perform_io(
            &mut mcu,
            &mut p,
            &IoOp::Capture {
                dst,
                width: 4,
                height: 4,
                seed: 3,
            },
            TaskId(0),
            0,
        )
        .unwrap();
        let mut sum = 0i32;
        for i in 0..16u32 {
            let b = mcu.mem.read_bytes(dst.add(i * 2), 2);
            sum = sum.wrapping_add(i16::from_le_bytes([b[0], b[1]]) as i32);
        }
        assert_eq!(v, sum);
    }

    #[test]
    fn lea_fir_runs_through_io_layer() {
        let (mut mcu, mut p) = setup();
        let x = mcu.mem.alloc(Region::LeaRam, 8, AllocTag::App);
        let h = mcu.mem.alloc(Region::LeaRam, 2, AllocTag::App);
        let y = mcu.mem.alloc(Region::LeaRam, 8, AllocTag::App);
        mcu.mem.write_bytes(x, &256i16.to_le_bytes());
        mcu.mem.write_bytes(h, &(1i16 << 8).to_le_bytes());
        let macs = perform_io(
            &mut mcu,
            &mut p,
            &IoOp::LeaFir {
                x,
                h,
                y,
                n_out: 4,
                taps: 1,
            },
            TaskId(0),
            0,
        )
        .unwrap();
        assert_eq!(macs, 4);
        assert_eq!(mcu.mem.read_bytes(y, 2), &256i16.to_le_bytes()[..]);
    }

    #[test]
    fn failed_spend_means_no_effect() {
        // With a supply that dies immediately, the radio must never see the
        // packet: spend-then-mutate.
        let cfg = mcu_emu::TimerResetConfig {
            on_min_us: 10,
            on_max_us: 10,
            off_min_us: 1,
            off_max_us: 1,
        };
        let mut mcu = Mcu::new(Supply::timer(cfg, 1));
        let mut p = Peripherals::new(1);
        let r = perform_io(
            &mut mcu,
            &mut p,
            &IoOp::Send { payload: vec![9] },
            TaskId(0),
            0,
        );
        assert!(r.is_err());
        assert_eq!(p.radio.count(), 0);
        assert_eq!(mcu.stats.io_executed, 0);
    }

    #[test]
    fn cost_of_each_kind_is_positive() {
        let (mcu, _) = setup();
        let a = Addr::new(Region::LeaRam, 0);
        let ops = [
            IoOp::Sense(Sensor::Humd),
            IoOp::Send { payload: vec![0] },
            IoOp::Capture {
                dst: a,
                width: 2,
                height: 2,
                seed: 0,
            },
            IoOp::LeaFir {
                x: a,
                h: a,
                y: a,
                n_out: 1,
                taps: 1,
            },
            IoOp::LeaRelu { buf: a, n: 3 },
            IoOp::LeaArgmax { buf: a, n: 3 },
            IoOp::Delay {
                cost: Cost::new(5, 5),
            },
        ];
        for op in ops {
            assert!(op.cost(&mcu).time_us > 0, "{} has no cost", op.kind_name());
        }
    }

    #[test]
    fn scheduled_fault_charges_cost_without_effect() {
        let (mut mcu, mut p) = setup();
        p.faults.install(FaultPlan::new(1, 1000));
        let r = perform_io(&mut mcu, &mut p, &IoOp::Sense(Sensor::Temp), TaskId(0), 0);
        match r {
            Err(IoFailure::Fault(f)) => {
                assert_eq!(f.kind, periph::FaultKind::SensorTimeout);
                assert!(!f.effect_done);
            }
            other => panic!("expected a fault, got {other:?}"),
        }
        assert_eq!(
            mcu.stats.io_executed, 0,
            "a faulted attempt is not an execution"
        );
        assert!(
            mcu.stats.app_time_us >= mcu.cost.sense_temp.time_us,
            "the faulted attempt still drove the bus"
        );
        assert_eq!(mcu.stats.counter("io_faults"), 1);
        assert_eq!(mcu.stats.counter("sensor_timeout"), 1);
    }

    #[test]
    fn radio_nack_is_post_effect() {
        let (mut mcu, mut p) = setup();
        p.faults.install(FaultPlan::new(1, 1000));
        // Every radio attempt faults; walk the schedule to its first NACK.
        loop {
            let r = perform_io(
                &mut mcu,
                &mut p,
                &IoOp::Send { payload: vec![5] },
                TaskId(0),
                0,
            );
            match r {
                Err(IoFailure::Fault(f)) if f.effect_done => {
                    assert_eq!(f.kind, periph::FaultKind::RadioNack);
                    assert_eq!(f.value, 4);
                    break;
                }
                Err(IoFailure::Fault(_)) => continue, // a drop: nothing left the radio
                other => panic!("rate 1000 must fault every attempt, got {other:?}"),
            }
        }
        assert_eq!(p.radio.count(), 1, "the NACKed packet is in the air");
    }

    #[test]
    fn delay_ops_never_fault() {
        let (mut mcu, mut p) = setup();
        p.faults.install(FaultPlan::new(1, 1000));
        let op = IoOp::Delay {
            cost: Cost::new(10, 10),
        };
        assert_eq!(op.periph_class(), None);
        assert_eq!(perform_io(&mut mcu, &mut p, &op, TaskId(0), 0), Ok(0));
    }

    #[test]
    fn fault_schedule_is_per_site_and_reproducible() {
        let run = |site: u16| {
            let (mut mcu, mut p) = setup();
            p.faults.install(FaultPlan::new(9, 300));
            (0..12u32)
                .map(|_| {
                    perform_io(
                        &mut mcu,
                        &mut p,
                        &IoOp::Sense(Sensor::Temp),
                        TaskId(2),
                        site,
                    )
                    .is_err()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(0), "same coordinates, same schedule");
        assert_ne!(run(0), run(1), "sites have independent schedules");
    }
}
