//! Task-based intermittent execution: task model, executor, baselines.
//!
//! This crate provides the task-based programming model the EaseIO paper
//! builds on (tasks with all-or-nothing semantics, re-executed from the top
//! after every power failure), a [`runtime::Runtime`] trait through which a
//! concrete runtime implements privatization and I/O re-execution policy,
//! and the two state-of-the-art baselines the paper compares against:
//!
//! * [`alpaca::AlpacaRuntime`] — privatizes write-after-read task-shared
//!   variables, committing private copies at task end (Maeng et al.,
//!   OOPSLA '17);
//! * [`ink::InkRuntime`] — buffers the task's entire accessed non-volatile
//!   state and commits it at task end (Yildirim et al., SenSys '18);
//! * [`naive::NaiveRuntime`] — no privatization at all, for demonstrating
//!   the failure modes.
//!
//! Neither baseline intercepts DMA or understands I/O re-execution
//! semantics: every peripheral operation inside an interrupted task repeats
//! after reboot, which is precisely the behaviour the paper measures as
//! wasted work, idempotence bugs, and unsafe execution. The EaseIO runtime
//! itself lives in the `easeio-core` crate.

pub mod alpaca;
pub mod builder;
pub mod ctx;
pub mod error;
pub mod executor;
pub mod footprint;
pub mod ink;
pub mod io;
pub mod naive;
pub mod retry;
pub mod runtime;
pub mod semantics;
pub mod task;
pub mod update;

pub use builder::{KernelBuilder, KernelFactory, KernelKind};
pub use ctx::TaskCtx;
pub use error::{DmaError, Fault, IoError, IoFailure, IoFault};
pub use executor::{run_app, ExecConfig, Outcome, RunResult};
pub use io::IoOp;
pub use retry::{FaultSpec, RetryPolicy};
pub use runtime::{DmaOutcome, IoOutcome, Runtime};
pub use semantics::{DmaAnnotation, ReexecSemantics, TaskId};
pub use task::{App, Inventory, TaskDef, TaskResult, Transition, Verdict};
pub use update::{graph_hash, TaskGraphVersion, UpdateStore};
