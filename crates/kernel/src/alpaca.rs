//! Alpaca baseline (Maeng, Colin, Lucia — OOPSLA '17).
//!
//! Alpaca makes tasks idempotent by privatizing task-shared variables with
//! write-after-read (WAR) dependencies: writes to a WAR variable are
//! redirected to a private copy, and the privates are committed to the
//! masters in an atomic two-phase commit when the task ends. A failed
//! attempt therefore never dirtied the masters and can simply re-execute.
//!
//! We detect WAR dynamically: a write to a variable this activation already
//! read is redirected (the compile-time analysis of the original system
//! would have privatized the same set for our workloads). Two properties of
//! the original are preserved exactly:
//!
//! * CPU-only WAR dependencies are safe;
//! * DMA transfers bypass privatization entirely and always re-execute — so
//!   DMA-induced WAR still corrupts memory, which is the paper's Figure 2b
//!   bug and the subject of its Figure 12 experiment.

use crate::error::{Fault, IoFailure};
use crate::io::{perform_dma, perform_io, IoOp};
use crate::runtime::{DmaOutcome, IoOutcome, Runtime};
use crate::semantics::{DmaAnnotation, ReexecSemantics, TaskId};
use mcu_emu::{Addr, AllocTag, Cost, Mcu, PowerFailure, RawVar, Region, WorkKind};
use periph::Peripherals;
use std::collections::{HashMap, HashSet};

/// The Alpaca runtime.
#[derive(Debug, Default)]
pub struct AlpacaRuntime {
    /// Variables read so far in the current activation.
    read_set: HashSet<RawVar>,
    /// WAR variables privatized in the current activation, in privatization
    /// order (the commit list).
    active: Vec<RawVar>,
    /// Redirection map for the current activation.
    redirect: HashMap<RawVar, RawVar>,
    /// Persistent private slots, reused across activations (the compiler
    /// allocates these statically).
    slots: HashMap<RawVar, RawVar>,
}

impl AlpacaRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot_for(&mut self, mcu: &mut Mcu, var: RawVar) -> RawVar {
        *self.slots.entry(var).or_insert_with(|| RawVar {
            addr: mcu.mem.alloc(Region::Fram, var.width, AllocTag::Runtime),
            width: var.width,
        })
    }

    /// Number of private slots ever allocated (footprint reporting).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl Runtime for AlpacaRuntime {
    fn name(&self) -> &'static str {
        "Alpaca"
    }

    fn on_task_entry(
        &mut self,
        _mcu: &mut Mcu,
        _task: TaskId,
        _reexecution: bool,
    ) -> Result<(), PowerFailure> {
        // Masters were never dirtied by privatized writes, so re-execution
        // needs no restore — just a fresh activation state.
        self.read_set.clear();
        self.active.clear();
        self.redirect.clear();
        Ok(())
    }

    fn commit_cost(&self, mcu: &Mcu, _task: TaskId) -> Cost {
        // Two-phase commit: the whole commit is priced up front so it is
        // atomic with respect to power failures (the original finishes an
        // interrupted commit after reboot; pre-paying models the same
        // all-or-nothing outcome).
        let mut cost = Cost::ZERO;
        for var in &self.active {
            let w = var.words();
            cost += mcu.cost.fram_read_word.times(w); // read private
            cost += mcu.cost.fram_write_word.times(w); // write master
        }
        if !self.active.is_empty() {
            // Commit-list bookkeeping: pending flag set + cleared.
            cost += mcu.cost.flag_write.times(2);
        }
        cost
    }

    fn commit_apply(&mut self, mcu: &mut Mcu, _task: TaskId) {
        for var in self.active.drain(..) {
            let slot = self.redirect[&var];
            let raw = slot.load(&mcu.mem);
            var.store(&mut mcu.mem, raw);
            mcu.stats.bump("alpaca_commit_copies");
        }
        self.read_set.clear();
        self.redirect.clear();
    }

    fn read_var(&mut self, mcu: &mut Mcu, _task: TaskId, var: RawVar) -> Result<u64, PowerFailure> {
        self.read_set.insert(var);
        let target = self.redirect.get(&var).copied().unwrap_or(var);
        mcu.load_var(WorkKind::App, target)
    }

    fn write_var(
        &mut self,
        mcu: &mut Mcu,
        task: TaskId,
        var: RawVar,
        raw: u64,
    ) -> Result<(), PowerFailure> {
        if let Some(slot) = self.redirect.get(&var).copied() {
            return mcu.store_var(WorkKind::App, slot, raw);
        }
        if var.addr.is_nonvolatile() && self.read_set.contains(&var) {
            // WAR detected: privatize. Initialize the private from the
            // master (overhead), then apply the application's write to it.
            let slot = self.slot_for(mcu, var);
            mcu.with_cause(mcu_emu::EnergyCause::Commit, |m| {
                m.copy_var(WorkKind::Overhead, var, slot)
            })?;
            self.redirect.insert(var, slot);
            self.active.push(var);
            mcu.stats.bump("alpaca_privatizations");
            let (ts, e) = (mcu.now_us(), mcu.stats.total_energy_nj());
            mcu.trace.emit_with(|| {
                easeio_trace::Event::task_instant(
                    ts,
                    e,
                    task.0,
                    easeio_trace::InstantKind::Privatize,
                    "war_copy",
                )
            });
            return mcu.store_var(WorkKind::App, slot, raw);
        }
        mcu.store_var(WorkKind::App, var, raw)
    }

    fn io_call(
        &mut self,
        mcu: &mut Mcu,
        periph: &mut Peripherals,
        task: TaskId,
        site: u16,
        op: &IoOp,
        _sem: ReexecSemantics,
        _deps: &[u16],
    ) -> Result<IoOutcome, IoFailure> {
        // No I/O semantics: every call executes, every reboot repeats it.
        let value = perform_io(mcu, periph, op, task, site)?;
        Ok(IoOutcome {
            value,
            executed: true,
        })
    }

    fn io_block_begin(
        &mut self,
        _mcu: &mut Mcu,
        _task: TaskId,
        _block: u16,
        _sem: ReexecSemantics,
    ) -> Result<(), PowerFailure> {
        Ok(())
    }

    fn io_block_end(&mut self, _mcu: &mut Mcu, _task: TaskId) -> Result<(), PowerFailure> {
        Ok(())
    }

    fn dma_copy(
        &mut self,
        mcu: &mut Mcu,
        _task: TaskId,
        _site: u16,
        src: Addr,
        dst: Addr,
        bytes: u32,
        _annotation: DmaAnnotation,
        _related: &[u16],
    ) -> Result<DmaOutcome, Fault> {
        // DMA is invisible to Alpaca: straight to memory, repeated on every
        // re-execution, no privatization of the touched bytes.
        perform_dma(mcu, src, dst, bytes, WorkKind::App)?;
        Ok(DmaOutcome { executed: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::{NvVar, Scalar, Supply};

    fn mcu() -> Mcu {
        Mcu::new(Supply::continuous())
    }

    #[test]
    fn war_write_is_redirected_until_commit() {
        let mut m = mcu();
        let mut rt = AlpacaRuntime::new();
        let t = TaskId(0);
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        v.set(&mut m.mem, 10);
        rt.on_task_entry(&mut m, t, false).unwrap();
        let r = rt.read_var(&mut m, t, v.raw()).unwrap();
        assert_eq!(i32::from_raw(r), 10);
        rt.write_var(&mut m, t, v.raw(), 11i32.to_raw()).unwrap();
        // Master untouched until commit.
        assert_eq!(v.get(&m.mem), 10);
        // The redirected read sees the new value.
        let r = rt.read_var(&mut m, t, v.raw()).unwrap();
        assert_eq!(i32::from_raw(r), 11);
        rt.on_task_commit(&mut m, t).unwrap();
        assert_eq!(v.get(&m.mem), 11);
        assert_eq!(m.stats.counter("alpaca_privatizations"), 1);
    }

    #[test]
    fn non_war_write_goes_direct() {
        let mut m = mcu();
        let mut rt = AlpacaRuntime::new();
        let t = TaskId(0);
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        rt.on_task_entry(&mut m, t, false).unwrap();
        rt.write_var(&mut m, t, v.raw(), 7i32.to_raw()).unwrap();
        assert_eq!(v.get(&m.mem), 7);
        assert_eq!(m.stats.counter("alpaca_privatizations"), 0);
    }

    #[test]
    fn reexecution_discards_private_state() {
        let mut m = mcu();
        let mut rt = AlpacaRuntime::new();
        let t = TaskId(0);
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        v.set(&mut m.mem, 1);
        // Attempt 1: read, write (privatized), then "power failure".
        rt.on_task_entry(&mut m, t, false).unwrap();
        rt.read_var(&mut m, t, v.raw()).unwrap();
        rt.write_var(&mut m, t, v.raw(), 2i32.to_raw()).unwrap();
        // Attempt 2 re-enters; master is still 1 and the increment is
        // replayed from the original value: idempotent.
        rt.on_task_entry(&mut m, t, true).unwrap();
        let r = rt.read_var(&mut m, t, v.raw()).unwrap();
        assert_eq!(i32::from_raw(r), 1);
        rt.write_var(&mut m, t, v.raw(), 2i32.to_raw()).unwrap();
        rt.on_task_commit(&mut m, t).unwrap();
        assert_eq!(v.get(&m.mem), 2);
    }

    #[test]
    fn private_slots_are_reused_across_activations() {
        let mut m = mcu();
        let mut rt = AlpacaRuntime::new();
        let t = TaskId(0);
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        for round in 0..3 {
            rt.on_task_entry(&mut m, t, false).unwrap();
            rt.read_var(&mut m, t, v.raw()).unwrap();
            rt.write_var(&mut m, t, v.raw(), round.to_raw()).unwrap();
            rt.on_task_commit(&mut m, t).unwrap();
        }
        assert_eq!(rt.slot_count(), 1, "one variable, one slot");
    }

    #[test]
    fn dma_bypasses_privatization() {
        // The defining bug: DMA writes the master even when the variable was
        // read earlier in the task.
        let mut m = mcu();
        let mut rt = AlpacaRuntime::new();
        let t = TaskId(0);
        let src: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        let dst: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        src.set(&mut m.mem, 42);
        dst.set(&mut m.mem, 0);
        rt.on_task_entry(&mut m, t, false).unwrap();
        rt.read_var(&mut m, t, dst.raw()).unwrap(); // read before DMA write
        rt.dma_copy(
            &mut m,
            t,
            0,
            src.addr(),
            dst.addr(),
            4,
            DmaAnnotation::Auto,
            &[],
        )
        .unwrap();
        // Master mutated immediately despite the WAR pattern.
        assert_eq!(dst.get(&m.mem), 42);
    }
}
