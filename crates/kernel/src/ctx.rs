//! The task context: the API surface a task body programs against.
//!
//! `TaskCtx` corresponds to the EaseIO language constructs of the paper's
//! Table 2 plus the ordinary task-model operations:
//!
//! | paper construct            | `TaskCtx` method        |
//! |----------------------------|-------------------------|
//! | `_call_IO(name, type,...)` | [`TaskCtx::call_io`] / [`TaskCtx::call_io_dep`] |
//! | `_IO_block_begin/_end`     | [`TaskCtx::io_block`]   |
//! | `_DMA_copy(src,dst,size)`  | [`TaskCtx::dma_copy`] / [`TaskCtx::dma_copy_annotated`] |
//! | task-shared variable access| [`TaskCtx::read`] / [`TaskCtx::write`] |
//! | plain computation          | [`TaskCtx::compute`]    |
//!
//! Call sites are numbered by order of execution within the task body, the
//! dynamic analogue of the compiler's `lock_##fn##task##num` naming (§4.5).
//! A loop over `call_io` therefore gets one lock slot per iteration — the
//! loop-array extension of the paper's §6 falls out for free.

use crate::error::{Fault, IoError, IoFailure};
use crate::io::IoOp;
use crate::retry::RetryPolicy;
use crate::runtime::Runtime;
use crate::semantics::{DmaAnnotation, ReexecSemantics, TaskId};
use easeio_trace::{ActivationTracker, Event, EventKind, InstantKind, SpanKind, Status};
use mcu_emu::{Addr, EnergyCause, Mcu, NvBuf, NvVar, Scalar, WorkKind, DMA_SITE_BASE};
use periph::{PeriphClass, Peripherals};

/// The execution context passed to task bodies.
pub struct TaskCtx<'a> {
    /// The simulated MCU.
    pub mcu: &'a mut Mcu,
    /// The simulated peripherals.
    pub periph: &'a mut Peripherals,
    rt: &'a mut dyn Runtime,
    tracker: &'a mut ActivationTracker,
    task: TaskId,
    retry: RetryPolicy,
    io_seq: u16,
    dma_seq: u16,
    block_seq: u16,
    block_depth: u16,
}

impl<'a> TaskCtx<'a> {
    /// Creates a context for one execution attempt of `task`. The tracker —
    /// the observer-side record of which sites already completed this
    /// activation (it models the logic analyzer, not anything the MCU
    /// stores) — is shared across attempts and committed by the executor.
    pub fn new(
        mcu: &'a mut Mcu,
        periph: &'a mut Peripherals,
        rt: &'a mut dyn Runtime,
        tracker: &'a mut ActivationTracker,
        task: TaskId,
        retry: RetryPolicy,
    ) -> Self {
        Self {
            mcu,
            periph,
            rt,
            tracker,
            task,
            retry,
            io_seq: 0,
            dma_seq: 0,
            block_seq: 0,
            block_depth: 0,
        }
    }

    /// Records a span event for site `site` at the current time/energy.
    fn span(&mut self, site: u16, name: &'static str, kind: EventKind) {
        let ts_us = self.mcu.now_us();
        let energy_nj = self.mcu.stats.total_energy_nj();
        let task = self.task.0;
        self.mcu.trace.emit_with(|| Event {
            ts_us,
            energy_nj,
            task,
            site,
            name,
            kind,
        });
    }

    /// The task being executed.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Sequence index the *next* `call_io` will get; apps use this to name
    /// dependency targets.
    pub fn next_io_site(&self) -> u16 {
        self.io_seq
    }

    /// Performs `cycles` cycles of application computation.
    pub fn compute(&mut self, cycles: u64) -> Result<(), Fault> {
        debug_assert_eq!(
            self.block_depth, 0,
            "EaseIO I/O blocks contain only I/O operations (paper §3.2)"
        );
        let c = self.mcu.cost.cpu_cycle.times(cycles);
        Ok(self.mcu.spend(WorkKind::App, c)?)
    }

    /// Reads a task-shared variable through the runtime.
    pub fn read<T: Scalar>(&mut self, var: NvVar<T>) -> Result<T, Fault> {
        let raw = self.rt.read_var(self.mcu, self.task, var.raw())?;
        Ok(T::from_raw(raw))
    }

    /// Writes a task-shared variable through the runtime.
    pub fn write<T: Scalar>(&mut self, var: NvVar<T>, value: T) -> Result<(), Fault> {
        debug_assert_eq!(
            self.block_depth, 0,
            "EaseIO I/O blocks contain only I/O operations (paper §3.2)"
        );
        Ok(self
            .rt
            .write_var(self.mcu, self.task, var.raw(), value.to_raw())?)
    }

    /// Reads one element of a task-shared buffer through the runtime.
    pub fn buf_read<T: Scalar>(&mut self, buf: NvBuf<T>, i: u32) -> Result<T, Fault> {
        let raw = self.rt.read_var(self.mcu, self.task, buf.slot(i))?;
        Ok(T::from_raw(raw))
    }

    /// Writes one element of a task-shared buffer through the runtime.
    pub fn buf_write<T: Scalar>(&mut self, buf: NvBuf<T>, i: u32, value: T) -> Result<(), Fault> {
        debug_assert_eq!(self.block_depth, 0, "no buffer writes inside I/O blocks");
        Ok(self
            .rt
            .write_var(self.mcu, self.task, buf.slot(i), value.to_raw())?)
    }

    /// Reads the persistent timekeeper (application-level `GetTime()`).
    pub fn now(&mut self) -> Result<u64, Fault> {
        Ok(self.mcu.read_timestamp(WorkKind::App)?)
    }

    /// `_call_IO(op, sem)` — executes `op` under the given re-execution
    /// semantics and returns its (possibly restored) value.
    pub fn call_io(&mut self, op: IoOp, sem: ReexecSemantics) -> Result<i32, Fault> {
        self.call_io_dep(op, sem, &[])
    }

    /// `_call_IO` with explicit data dependencies: `deps` are the sequence
    /// indices of earlier call sites whose outputs feed this operation. If a
    /// dependency re-executed in this attempt, this operation re-executes
    /// too (paper §3.3.2).
    pub fn call_io_dep(
        &mut self,
        op: IoOp,
        sem: ReexecSemantics,
        deps: &[u16],
    ) -> Result<i32, Fault> {
        let site = self.io_seq;
        self.io_seq += 1;
        let name = op.kind_name();
        self.span(site, name, EventKind::SpanBegin(SpanKind::IoCall));
        // Transient-fault recovery loop: a faulted attempt is retried with
        // energy-aware backoff up to the policy's budget, then degraded
        // according to the operation's re-execution semantics. Power
        // failures abort the attempt as before — the activation re-executes
        // after reboot with the fault schedule advanced past the consumed
        // attempts (the outside world does not reboot with the MCU).
        let mut faulted: u32 = 0;
        // Attribution marks taken before each attempt of the operation: a
        // faulted attempt's energy is re-labeled retry waste, and an attempt
        // that turns out redundant is re-labeled redundant I/O below.
        let mut marks = self.mcu.stats.cause_marks();
        let out = loop {
            match self
                .rt
                .io_call(self.mcu, self.periph, self.task, site, &op, sem, deps)
            {
                Ok(out) => break out,
                Err(IoFailure::Power(p)) => {
                    self.span(
                        site,
                        name,
                        EventKind::SpanEnd(SpanKind::IoCall, Status::Failed),
                    );
                    return Err(p.into());
                }
                Err(IoFailure::Fault(f)) => {
                    faulted += 1;
                    // The faulted attempt paid the full operation cost for
                    // nothing: move its energy into the retry bucket.
                    self.mcu
                        .stats
                        .reattribute_since(&marks, EnergyCause::Retry, self.task.0);
                    self.span(
                        site,
                        f.kind.name(),
                        EventKind::Instant(InstantKind::PeriphFault),
                    );
                    if faulted > self.retry.max_retries {
                        return self.degrade_io(site, name, sem, f.kind, faulted);
                    }
                    // Invariant probe: retrying a fault whose external
                    // effect already happened (radio NACK) under `Single`
                    // semantics is exactly the duplicate the annotation
                    // forbids. EaseIO absorbs such faults inside its
                    // `io_call` (the completion record was pre-charged) and
                    // never reaches this point; baselines do.
                    if f.effect_done && matches!(sem, ReexecSemantics::Single) {
                        self.mcu.stats.bump("probe_retry_duplicated_effect");
                    }
                    let backoff = self.retry.backoff_cost(faulted);
                    if let Err(p) = self
                        .mcu
                        .with_cause(EnergyCause::Retry, |m| m.spend(WorkKind::Overhead, backoff))
                    {
                        self.span(
                            site,
                            name,
                            EventKind::SpanEnd(SpanKind::IoCall, Status::Failed),
                        );
                        return Err(p.into());
                    }
                    self.mcu.stats.bump("io_retries");
                    self.span(site, name, EventKind::Instant(InstantKind::IoRetry));
                    marks = self.mcu.stats.cause_marks();
                }
            }
        };
        let status = if out.executed {
            let ts = self.mcu.now_us();
            self.tracker
                .record_io_value(self.task.0, site, out.value, ts);
            if self.tracker.first_io(self.task.0, site) {
                Status::Executed
            } else {
                // The site had already completed in an earlier attempt of
                // this activation: this execution is redundant. Everything
                // the operation spent since the last marks — op cost plus
                // the runtime's bookkeeping around it — is redundant-I/O
                // waste, charged against this call site.
                self.mcu.stats.io_reexecutions += 1;
                let (_, moved_nj) =
                    self.mcu
                        .stats
                        .reattribute_since(&marks, EnergyCause::RedundantIo, self.task.0);
                self.mcu.stats.note_redundant_site(site, moved_nj);
                // Invariant probe: a bare `Single` op with no dependence
                // forcing and no enclosing block must never run twice within
                // one activation. A safe runtime's `io_call` only reports a
                // completed Single as executed again under dependence
                // forcing or a Violated block — both excluded here — so any
                // hit means its control blocks lost the completion record.
                // (An op interrupted *during* completion recording returns
                // `Err` above and never marks `first_io`, so the legitimate
                // op-to-lock re-execution window counts as Executed, not
                // Redundant.)
                if matches!(sem, ReexecSemantics::Single)
                    && deps.is_empty()
                    && self.block_depth == 0
                {
                    self.mcu.stats.bump("probe_single_redundant");
                }
                Status::Redundant
            }
        } else {
            self.mcu.stats.io_skipped += 1;
            Status::Skipped
        };
        self.span(site, name, EventKind::SpanEnd(SpanKind::IoCall, status));
        Ok(out.value)
    }

    /// Degrades an I/O operation whose transient-fault retry budget is
    /// exhausted, per its re-execution semantics:
    ///
    /// * `Always` — the reading is best-effort anyway: skip with a flag.
    /// * `Timely` — serve the runtime's degraded fallback (typically the
    ///   last committed value) if it offers one; fault the task otherwise.
    /// * `Single` — the effect must happen exactly once and has not
    ///   happened: nothing can be served, the task faults.
    fn degrade_io(
        &mut self,
        site: u16,
        name: &'static str,
        sem: ReexecSemantics,
        kind: periph::FaultKind,
        attempts: u32,
    ) -> Result<i32, Fault> {
        let exhausted = IoError {
            kind,
            op: name,
            task: self.task.0,
            site,
            attempts,
        };
        match sem {
            ReexecSemantics::Always => {
                self.mcu.stats.bump("io_degraded_skips");
                self.span(site, "skip", EventKind::Instant(InstantKind::Degraded));
                self.span(
                    site,
                    name,
                    EventKind::SpanEnd(SpanKind::IoCall, Status::Skipped),
                );
                Ok(0)
            }
            ReexecSemantics::Timely { window_us } => {
                // The degraded `Timely` path branches on the cached value's
                // age — an uncharged wall-clock observation that boundary
                // equivalence classification must know about.
                self.mcu.note_time_observed();
                let now = self.mcu.now_us();
                let last = self
                    .tracker
                    .last_io_value(self.task.0, site)
                    .map(|(v, ts)| (v, now.saturating_sub(ts)));
                match self
                    .rt
                    .degraded_fallback(self.mcu, self.task, site, window_us, last)
                {
                    Err(p) => {
                        self.span(
                            site,
                            name,
                            EventKind::SpanEnd(SpanKind::IoCall, Status::Failed),
                        );
                        Err(p.into())
                    }
                    Ok(Some(v)) => {
                        self.mcu.stats.bump("io_degraded_fallbacks");
                        // Invariant probe: serving a fallback older than the
                        // `Timely` window (plus slack for the time the check
                        // itself consumes) violates the freshness contract.
                        // EaseIO's override refuses such values; the blind
                        // default does not.
                        if let Some((_, age_us)) = last {
                            if age_us > window_us + 100 {
                                self.mcu.stats.bump("probe_degraded_staleness_exceeded");
                            }
                        }
                        self.span(site, "fallback", EventKind::Instant(InstantKind::Degraded));
                        self.span(
                            site,
                            name,
                            EventKind::SpanEnd(SpanKind::IoCall, Status::Skipped),
                        );
                        Ok(v)
                    }
                    Ok(None) => {
                        self.span(
                            site,
                            name,
                            EventKind::SpanEnd(SpanKind::IoCall, Status::Failed),
                        );
                        Err(Fault::Io(exhausted))
                    }
                }
            }
            ReexecSemantics::Single => {
                self.span(
                    site,
                    name,
                    EventKind::SpanEnd(SpanKind::IoCall, Status::Failed),
                );
                Err(Fault::Io(exhausted))
            }
        }
    }

    /// `_IO_block_begin(sem) ... _IO_block_end` — runs `f` as an atomic I/O
    /// block with block-level re-execution semantics. Blocks nest; the
    /// outermost decisive block wins (paper §3.3.1).
    pub fn io_block<R>(
        &mut self,
        sem: ReexecSemantics,
        f: impl FnOnce(&mut Self) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let block = self.block_seq;
        self.block_seq += 1;
        self.span(block, "block", EventKind::SpanBegin(SpanKind::IoBlock));
        let attempt = (|| {
            self.rt.io_block_begin(self.mcu, self.task, block, sem)?;
            self.block_depth += 1;
            let r = f(self);
            self.block_depth -= 1;
            let value = r?;
            self.rt.io_block_end(self.mcu, self.task)?;
            Ok(value)
        })();
        let status = match &attempt {
            Ok(_) => Status::Committed,
            Err(_) => Status::Failed,
        };
        self.span(
            block,
            "block",
            EventKind::SpanEnd(SpanKind::IoBlock, status),
        );
        attempt
    }

    /// `_DMA_copy(src, dst, bytes)` with automatic semantics resolution.
    pub fn dma_copy(&mut self, src: Addr, dst: Addr, bytes: u32) -> Result<(), Fault> {
        self.dma_copy_annotated(src, dst, bytes, DmaAnnotation::Auto, &[])
    }

    /// `_DMA_copy` with an explicit annotation (`Exclude` for constant data)
    /// and the related I/O call sites whose outputs the data depends on
    /// (paper §4.3.1).
    pub fn dma_copy_annotated(
        &mut self,
        src: Addr,
        dst: Addr,
        bytes: u32,
        annotation: DmaAnnotation,
        related: &[u16],
    ) -> Result<(), Fault> {
        debug_assert_eq!(self.block_depth, 0, "DMA copies sit outside I/O blocks");
        let site = self.dma_seq;
        self.dma_seq += 1;
        self.span(site, "dma", EventKind::SpanBegin(SpanKind::DmaCopy));
        // DMA transfer faults fire on the *request*: the controller aborts
        // the programmed burst before the runtime's skip/privatization
        // logic ever sees it. A faulted burst still paid for the transfer.
        let mut faulted: u32 = 0;
        while let Some(kind) = self
            .periph
            .faults
            .next_fault(PeriphClass::Dma, self.task.0, site)
        {
            faulted += 1;
            let wasted = periph::dma::transfer_cost(&self.mcu.cost, bytes);
            // The aborted burst paid for the transfer without delivering it:
            // retry waste, even if a power failure lands mid-burst.
            let marks = self.mcu.stats.cause_marks();
            let spent = self.mcu.spend(WorkKind::App, wasted);
            self.mcu
                .stats
                .reattribute_since(&marks, EnergyCause::Retry, self.task.0);
            self.mcu.stats.bump("dma_faults");
            self.span(
                site,
                kind.name(),
                EventKind::Instant(InstantKind::PeriphFault),
            );
            if let Err(p) = spent {
                self.span(
                    site,
                    "dma",
                    EventKind::SpanEnd(SpanKind::DmaCopy, Status::Failed),
                );
                return Err(p.into());
            }
            if faulted > self.retry.max_retries {
                self.span(
                    site,
                    "dma",
                    EventKind::SpanEnd(SpanKind::DmaCopy, Status::Failed),
                );
                // No degradation for DMA: the copied bytes feed computation
                // that cannot proceed without them.
                return Err(Fault::Io(IoError {
                    kind,
                    op: "dma",
                    task: self.task.0,
                    site,
                    attempts: faulted,
                }));
            }
            let backoff = self.retry.backoff_cost(faulted);
            if let Err(p) = self
                .mcu
                .with_cause(EnergyCause::Retry, |m| m.spend(WorkKind::Overhead, backoff))
            {
                self.span(
                    site,
                    "dma",
                    EventKind::SpanEnd(SpanKind::DmaCopy, Status::Failed),
                );
                return Err(p.into());
            }
            self.mcu.stats.bump("io_retries");
            self.span(site, "dma", EventKind::Instant(InstantKind::IoRetry));
        }
        let marks = self.mcu.stats.cause_marks();
        let out = match self.rt.dma_copy(
            self.mcu, self.task, site, src, dst, bytes, annotation, related,
        ) {
            Ok(out) => out,
            Err(e) => {
                self.span(
                    site,
                    "dma",
                    EventKind::SpanEnd(SpanKind::DmaCopy, Status::Failed),
                );
                return Err(e);
            }
        };
        let status = if out.executed {
            if self.tracker.first_dma(self.task.0, site) {
                Status::Executed
            } else {
                self.mcu.stats.dma_reexecutions += 1;
                // A repeated burst at a completed site is redundant I/O.
                // DMA sites share the numbering space with I/O call sites
                // only after the `DMA_SITE_BASE` offset.
                let (_, moved_nj) =
                    self.mcu
                        .stats
                        .reattribute_since(&marks, EnergyCause::RedundantIo, self.task.0);
                self.mcu
                    .stats
                    .note_redundant_site(DMA_SITE_BASE | site, moved_nj);
                Status::Redundant
            }
        } else {
            self.mcu.stats.dma_skipped += 1;
            Status::Skipped
        };
        self.span(site, "dma", EventKind::SpanEnd(SpanKind::DmaCopy, status));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveRuntime;
    use crate::semantics::TaskId;
    use mcu_emu::{NvBuf, NvVar, Region, Supply};
    use periph::Sensor;

    fn setup() -> (Mcu, Peripherals, NaiveRuntime, ActivationTracker) {
        (
            Mcu::new(Supply::continuous()),
            Peripherals::new(3),
            NaiveRuntime::new(),
            ActivationTracker::new(),
        )
    }

    #[test]
    fn io_sites_are_numbered_in_execution_order() {
        let (mut mcu, mut p, mut rt, mut tel) = setup();
        let mut ctx = TaskCtx::new(
            &mut mcu,
            &mut p,
            &mut rt,
            &mut tel,
            TaskId(0),
            RetryPolicy::default(),
        );
        assert_eq!(ctx.next_io_site(), 0);
        ctx.call_io(IoOp::Sense(Sensor::Temp), ReexecSemantics::Always)
            .unwrap();
        assert_eq!(ctx.next_io_site(), 1);
        ctx.call_io(IoOp::Sense(Sensor::Humd), ReexecSemantics::Always)
            .unwrap();
        assert_eq!(ctx.next_io_site(), 2);
    }

    #[test]
    fn tracker_counts_reexecution_across_attempts() {
        let (mut mcu, mut p, mut rt, mut tel) = setup();
        // Attempt 1 executes site 0.
        {
            let mut ctx = TaskCtx::new(
                &mut mcu,
                &mut p,
                &mut rt,
                &mut tel,
                TaskId(0),
                RetryPolicy::default(),
            );
            ctx.call_io(IoOp::Sense(Sensor::Temp), ReexecSemantics::Always)
                .unwrap();
        }
        assert_eq!(mcu.stats.io_reexecutions, 0);
        // Attempt 2 (same activation: telemetry not committed) repeats it.
        {
            let mut ctx = TaskCtx::new(
                &mut mcu,
                &mut p,
                &mut rt,
                &mut tel,
                TaskId(0),
                RetryPolicy::default(),
            );
            ctx.call_io(IoOp::Sense(Sensor::Temp), ReexecSemantics::Always)
                .unwrap();
        }
        assert_eq!(mcu.stats.io_reexecutions, 1);
        // After commit, a fresh activation's execution is not redundant.
        tel.commit(0);
        {
            let mut ctx = TaskCtx::new(
                &mut mcu,
                &mut p,
                &mut rt,
                &mut tel,
                TaskId(0),
                RetryPolicy::default(),
            );
            ctx.call_io(IoOp::Sense(Sensor::Temp), ReexecSemantics::Always)
                .unwrap();
        }
        assert_eq!(mcu.stats.io_reexecutions, 1);
    }

    #[test]
    fn reads_and_writes_route_through_the_runtime() {
        let (mut mcu, mut p, mut rt, mut tel) = setup();
        let v: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
        let b: NvBuf<i16> = NvBuf::alloc(&mut mcu.mem, Region::Fram, 4);
        let mut ctx = TaskCtx::new(
            &mut mcu,
            &mut p,
            &mut rt,
            &mut tel,
            TaskId(0),
            RetryPolicy::default(),
        );
        ctx.write(v, -9).unwrap();
        assert_eq!(ctx.read(v).unwrap(), -9);
        ctx.buf_write(b, 2, 7i16).unwrap();
        assert_eq!(ctx.buf_read(b, 2).unwrap(), 7i16);
    }

    #[test]
    fn now_reads_the_persistent_timer_with_cost() {
        let (mut mcu, mut p, mut rt, mut tel) = setup();
        let mut ctx = TaskCtx::new(
            &mut mcu,
            &mut p,
            &mut rt,
            &mut tel,
            TaskId(0),
            RetryPolicy::default(),
        );
        let t1 = ctx.now().unwrap();
        let t2 = ctx.now().unwrap();
        assert!(t2 > t1, "each timer read advances virtual time");
    }

    #[test]
    fn compute_charges_app_time() {
        let (mut mcu, mut p, mut rt, mut tel) = setup();
        let mut ctx = TaskCtx::new(
            &mut mcu,
            &mut p,
            &mut rt,
            &mut tel,
            TaskId(0),
            RetryPolicy::default(),
        );
        ctx.compute(123).unwrap();
        assert_eq!(mcu.stats.app_time_us, 123);
        assert_eq!(mcu.stats.overhead_time_us, 0);
    }
}
