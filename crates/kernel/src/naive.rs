//! Naive runtime: no privatization, no I/O policy.
//!
//! Variables are read and written in place; every I/O and DMA re-executes
//! after each reboot. This runtime exhibits all three failure modes of the
//! paper's Figure 2 (wasteful I/O, idempotence bugs, unsafe execution) and
//! serves as the didactic lower bound in tests and examples.

use crate::error::{Fault, IoFailure};
use crate::io::{perform_dma, perform_io, IoOp};
use crate::runtime::{DmaOutcome, IoOutcome, Runtime};
use crate::semantics::{DmaAnnotation, ReexecSemantics, TaskId};
use mcu_emu::{Addr, Mcu, PowerFailure, RawVar, WorkKind};
use periph::Peripherals;

/// The no-op runtime.
#[derive(Debug, Default)]
pub struct NaiveRuntime;

impl NaiveRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self
    }
}

impl Runtime for NaiveRuntime {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn on_task_entry(
        &mut self,
        _mcu: &mut Mcu,
        _task: TaskId,
        _reexecution: bool,
    ) -> Result<(), PowerFailure> {
        Ok(())
    }

    fn commit_cost(&self, _mcu: &Mcu, _task: TaskId) -> mcu_emu::Cost {
        mcu_emu::Cost::ZERO
    }

    fn commit_apply(&mut self, _mcu: &mut Mcu, _task: TaskId) {}

    fn read_var(&mut self, mcu: &mut Mcu, _task: TaskId, var: RawVar) -> Result<u64, PowerFailure> {
        mcu.load_var(WorkKind::App, var)
    }

    fn write_var(
        &mut self,
        mcu: &mut Mcu,
        _task: TaskId,
        var: RawVar,
        raw: u64,
    ) -> Result<(), PowerFailure> {
        mcu.store_var(WorkKind::App, var, raw)
    }

    fn io_call(
        &mut self,
        mcu: &mut Mcu,
        periph: &mut Peripherals,
        task: TaskId,
        site: u16,
        op: &IoOp,
        _sem: ReexecSemantics,
        _deps: &[u16],
    ) -> Result<IoOutcome, IoFailure> {
        let value = perform_io(mcu, periph, op, task, site)?;
        Ok(IoOutcome {
            value,
            executed: true,
        })
    }

    fn io_block_begin(
        &mut self,
        _mcu: &mut Mcu,
        _task: TaskId,
        _block: u16,
        _sem: ReexecSemantics,
    ) -> Result<(), PowerFailure> {
        Ok(())
    }

    fn io_block_end(&mut self, _mcu: &mut Mcu, _task: TaskId) -> Result<(), PowerFailure> {
        Ok(())
    }

    fn dma_copy(
        &mut self,
        mcu: &mut Mcu,
        _task: TaskId,
        _site: u16,
        src: Addr,
        dst: Addr,
        bytes: u32,
        _annotation: DmaAnnotation,
        _related: &[u16],
    ) -> Result<DmaOutcome, Fault> {
        perform_dma(mcu, src, dst, bytes, WorkKind::App)?;
        Ok(DmaOutcome { executed: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::{NvVar, Region, Supply};

    #[test]
    fn accesses_hit_master_directly() {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut rt = NaiveRuntime::new();
        let v: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
        rt.write_var(&mut mcu, TaskId(0), v.raw(), 5i32.to_raw())
            .unwrap();
        assert_eq!(v.get(&mcu.mem), 5);
        assert_eq!(
            rt.read_var(&mut mcu, TaskId(0), v.raw()).unwrap(),
            5i32.to_raw()
        );
    }

    use mcu_emu::Scalar;
}
