//! The intermittent executor: boot, run, fail, reboot, re-execute, commit.
//!
//! This is the task-model scheduler shared by every runtime. The current
//! task id lives in FRAM (restored on each boot); a task body that returns
//! `Err(PowerFailure)` is re-entered from the top, and a body that returns a
//! transition is committed through the runtime, after which control moves
//! on. A task whose energy demand exceeds what the supply can ever deliver
//! would re-execute forever — the non-termination bug of paper §3.5 — so
//! the executor gives up after a configurable number of attempts and reports
//! it.

use crate::ctx::TaskCtx;
use crate::error::Fault;
use crate::retry::RetryPolicy;
use crate::runtime::Runtime;
use crate::semantics::TaskId;
use crate::task::{App, Transition, Verdict};
use easeio_trace::{ActivationTracker, Event, EventKind, InstantKind, SpanKind, Status, NO_SITE};
use mcu_emu::{AllocTag, EnergyCause, Mcu, NvVar, Region, RunStats, WorkKind};
use periph::Peripherals;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Give up on a task after this many failed attempts (non-termination).
    pub max_attempts_per_task: u64,
    /// Retry/backoff policy for transient peripheral faults.
    pub retry: RetryPolicy,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            max_attempts_per_task: 5_000,
            retry: RetryPolicy::default(),
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The application's final task transitioned to `Done`.
    Completed,
    /// A task could not complete within the attempt budget: the
    /// non-termination bug of paper §3.5.
    NonTermination,
    /// A non-recoverable fault — a DMA resource error or an exhausted I/O
    /// retry budget with no degradation — aborted the run; re-execution
    /// cannot clear it.
    Fault(Fault),
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// The time/energy ledger and counters.
    pub stats: RunStats,
    /// Total wall-clock time including dead time (µs).
    pub wall_us: u64,
    /// On-time (µs).
    pub on_us: u64,
    /// Application correctness, if the app defines a check.
    pub verdict: Option<Verdict>,
    /// Structured event trace, drained from the MCU's sink (empty unless
    /// `mcu.trace` was enabled before the run).
    pub events: Vec<Event>,
    /// Events lost to trace-ring overflow.
    pub events_dropped: u64,
    /// Per-spend samples of the cumulative per-cause energy ledger (empty
    /// unless `mcu.trace` was enabled) — the raw series behind the Chrome
    /// counter tracks.
    pub cause_samples: Vec<mcu_emu::CauseSample>,
}

/// Runs `app` under `rt` on `mcu`/`periph` until completion or give-up.
///
/// The MCU should be freshly constructed; the app's buffers must already be
/// allocated in `mcu.mem` (apps do this in their builders).
pub fn run_app(
    app: &App,
    rt: &mut dyn Runtime,
    mcu: &mut Mcu,
    periph: &mut Peripherals,
    cfg: &ExecConfig,
) -> RunResult {
    // The execution pointer lives in FRAM, restored on every boot.
    let cur: NvVar<u16> = NvVar::alloc_tagged(&mut mcu.mem, Region::Fram, AllocTag::Runtime);
    cur.set(&mut mcu.mem, app.entry.0);

    let mut tracker = ActivationTracker::new();
    let mut outcome = Outcome::Completed;
    // Failed attempts of the activation currently in progress (survives the
    // boot loop so the non-termination guard covers boot-loop livelock too).
    let mut attempts_this_activation: u64 = 0;

    // Boot loop: one iteration per power-on period.
    'run: loop {
        // Boot: pay the boot overhead and restore the execution pointer.
        emit_instant(mcu, InstantKind::Boot, "boot");
        let mut task_id = match boot(rt, mcu, cur) {
            Ok(raw) => {
                if raw == u16::MAX {
                    break 'run; // the app had already finished
                }
                TaskId(raw)
            }
            Err(_) => {
                // Failure during boot itself: reboot again.
                attempts_this_activation += 1;
                if attempts_this_activation > cfg.max_attempts_per_task {
                    outcome = Outcome::NonTermination;
                    emit_instant(mcu, InstantKind::GiveUp, "boot");
                    break 'run;
                }
                continue 'run;
            }
        };

        // Powered: execute tasks back-to-back until a failure or completion.
        loop {
            let reexecution = attempts_this_activation > 0;
            attempts_this_activation += 1;
            if attempts_this_activation > cfg.max_attempts_per_task {
                outcome = Outcome::NonTermination;
                emit_instant(mcu, InstantKind::GiveUp, app.task(task_id).name);
                break 'run;
            }
            mcu.stats.task_attempts += 1;
            // Energy attribution: every spend in this attempt is charged to
            // this task; application work counts as forward progress on the
            // first attempt of an activation and as re-executed compute on
            // every replay after a failure. `reset_attribution` also clears
            // any cause scope a crashed attempt left open.
            mcu.reset_attribution();
            mcu.set_attr_task(task_id.0);
            mcu.set_replay_base(reexecution);
            let task_name = app.task(task_id).name;
            // The attempt span's begin carries the attempt index within the
            // activation in `site` (> 0 means re-execution).
            let attempt_idx = (attempts_this_activation - 1).min(NO_SITE as u64 - 1) as u16;
            emit_span(
                mcu,
                task_id.0,
                attempt_idx,
                task_name,
                EventKind::SpanBegin(SpanKind::TaskAttempt),
            );
            let attempt = (|| {
                rt.on_task_entry(mcu, task_id, reexecution)?;
                let body = app.task(task_id).body.clone();
                let mut ctx = TaskCtx::new(mcu, periph, rt, &mut tracker, task_id, cfg.retry);
                let transition = body(&mut ctx)?;
                // Commit: the runtime's flag/privatization publication and
                // the execution-pointer update are ONE atomic step. If the
                // energy for the whole commit is not there, nothing is
                // applied and the task re-executes with its flags intact.
                let next = match transition {
                    Transition::To(t) => t.0,
                    Transition::Done => u16::MAX,
                };
                let cost = rt.commit_cost(mcu, task_id)
                    + mcu.cost.fram_write_word.times(cur.raw().words());
                emit_span(
                    mcu,
                    task_id.0,
                    NO_SITE,
                    task_name,
                    EventKind::SpanBegin(SpanKind::Commit),
                );
                if let Err(e) =
                    mcu.with_cause(EnergyCause::Commit, |m| m.spend(WorkKind::Overhead, cost))
                {
                    emit_span(
                        mcu,
                        task_id.0,
                        NO_SITE,
                        task_name,
                        EventKind::SpanEnd(SpanKind::Commit, Status::Failed),
                    );
                    return Err(e.into());
                }
                rt.commit_apply(mcu, task_id);
                cur.raw().store(&mut mcu.mem, next as u64);
                emit_span(
                    mcu,
                    task_id.0,
                    NO_SITE,
                    task_name,
                    EventKind::SpanEnd(SpanKind::Commit, Status::Committed),
                );
                Ok::<Transition, Fault>(transition)
            })();
            match attempt {
                Ok(transition) => {
                    mcu.stats.task_commits += 1;
                    emit_span(
                        mcu,
                        task_id.0,
                        NO_SITE,
                        task_name,
                        EventKind::SpanEnd(SpanKind::TaskAttempt, Status::Committed),
                    );
                    tracker.commit(task_id.0);
                    attempts_this_activation = 0;
                    match transition {
                        Transition::Done => break 'run,
                        Transition::To(t) => task_id = t,
                    }
                }
                Err(Fault::Power(_)) => {
                    // The MCU already cleared volatile memory and advanced
                    // across the dead period; go back to the boot loop. The
                    // span end lands after the dead period — profile
                    // builders clip it back to the failure instant.
                    emit_span(
                        mcu,
                        task_id.0,
                        NO_SITE,
                        task_name,
                        EventKind::SpanEnd(SpanKind::TaskAttempt, Status::Failed),
                    );
                    continue 'run;
                }
                Err(f @ (Fault::Dma(_) | Fault::Io(_))) => {
                    // Re-executing cannot clear a resource fault or refill
                    // an exhausted retry budget mid-schedule: abort.
                    emit_span(
                        mcu,
                        task_id.0,
                        NO_SITE,
                        task_name,
                        EventKind::SpanEnd(SpanKind::TaskAttempt, Status::Failed),
                    );
                    emit_instant(mcu, InstantKind::GiveUp, task_name);
                    outcome = Outcome::Fault(f);
                    break 'run;
                }
            }
        }
    }

    let verdict = if outcome == Outcome::Completed {
        app.verify.as_ref().map(|v| v(mcu, periph))
    } else {
        None
    };
    let events_dropped = mcu.trace.dropped();
    RunResult {
        outcome,
        stats: mcu.stats.clone(),
        wall_us: mcu.clock.now_us(),
        on_us: mcu.clock.on_us(),
        verdict,
        events: mcu.trace.take(),
        events_dropped,
        cause_samples: mcu.cause_samples().to_vec(),
    }
}

/// Records an unattributed instant at the current time/energy.
fn emit_instant(mcu: &mut Mcu, kind: InstantKind, name: &'static str) {
    let ts_us = mcu.now_us();
    let energy_nj = mcu.stats.total_energy_nj();
    mcu.trace
        .emit_with(|| Event::instant(ts_us, energy_nj, kind, name));
}

/// Records a task-attributed span event at the current time/energy.
fn emit_span(mcu: &mut Mcu, task: u16, site: u16, name: &'static str, kind: EventKind) {
    let ts_us = mcu.now_us();
    let energy_nj = mcu.stats.total_energy_nj();
    mcu.trace.emit_with(|| Event {
        ts_us,
        energy_nj,
        task,
        site,
        name,
        kind,
    });
}

/// Boot sequence: pay the runtime's boot cost and reload the execution
/// pointer from FRAM.
fn boot(
    rt: &mut dyn Runtime,
    mcu: &mut Mcu,
    cur: NvVar<u16>,
) -> Result<u16, mcu_emu::PowerFailure> {
    // Boot overhead is kernel work outside any task; clear whatever
    // attribution state the interrupted attempt left behind.
    mcu.reset_attribution();
    mcu.spend(WorkKind::Overhead, rt.boot_cost())?;
    let raw = mcu.load_var(WorkKind::Overhead, cur.raw())?;
    Ok(raw as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveRuntime;
    use crate::task::{Inventory, TaskDef, TaskResult};
    use crate::TaskCtx;
    use mcu_emu::{Supply, TimerResetConfig};
    use std::rc::Rc;

    fn two_task_app(mcu: &mut Mcu) -> (App, NvVar<u32>) {
        let counter: NvVar<u32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
        let body_a = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
            ctx.compute(100)?;
            let v = ctx.read(counter)?;
            ctx.write(counter, v + 1)?;
            Ok(Transition::To(TaskId(1)))
        };
        let body_b = move |ctx: &mut TaskCtx<'_>| -> TaskResult {
            ctx.compute(50)?;
            let v = ctx.read(counter)?;
            if v < 5 {
                Ok(Transition::To(TaskId(0)))
            } else {
                Ok(Transition::Done)
            }
        };
        let app = App {
            name: "two-task",
            tasks: vec![
                TaskDef {
                    name: "inc",
                    body: Rc::new(body_a),
                },
                TaskDef {
                    name: "check",
                    body: Rc::new(body_b),
                },
            ],
            entry: TaskId(0),
            inventory: Inventory {
                tasks: 2,
                ..Default::default()
            },
            verify: None,
        };
        (app, counter)
    }

    #[test]
    fn continuous_power_runs_to_completion() {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut p = Peripherals::new(1);
        let (app, counter) = two_task_app(&mut mcu);
        let mut rt = NaiveRuntime::new();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(counter.get(&mcu.mem), 5);
        assert_eq!(r.stats.power_failures, 0);
        // 5 inc commits + 5 check commits.
        assert_eq!(r.stats.task_commits, 10);
        assert_eq!(r.stats.task_attempts, 10);
    }

    #[test]
    fn intermittent_power_still_completes_task_graph() {
        let cfg = TimerResetConfig {
            on_min_us: 300,
            on_max_us: 900,
            off_min_us: 50,
            off_max_us: 100,
        };
        let mut mcu = Mcu::new(Supply::timer(cfg, 11));
        let mut p = Peripherals::new(1);
        let (app, counter) = two_task_app(&mut mcu);
        let mut rt = NaiveRuntime::new();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        // The naive runtime is unsafe in general, but this app only ever
        // increments between commits, and a failed attempt re-reads the
        // committed value... note: naive does NOT privatize, so `counter`
        // may be incremented more than 5 times if a failure lands between
        // the write and the commit. It must be at least 5.
        assert!(counter.get(&mcu.mem) >= 5);
        assert!(r.stats.power_failures > 0);
        assert!(r.stats.task_attempts > r.stats.task_commits);
        assert!(r.wall_us > r.on_us);
    }

    #[test]
    fn impossible_task_reports_non_termination() {
        // Each attempt needs 5 ms of uninterrupted time but the supply dies
        // every 1 ms: the task can never finish.
        let cfg = TimerResetConfig {
            on_min_us: 1_000,
            on_max_us: 1_000,
            off_min_us: 10,
            off_max_us: 10,
        };
        let mut mcu = Mcu::new(Supply::timer(cfg, 5));
        let mut p = Peripherals::new(1);
        let app = App {
            name: "hog",
            tasks: vec![TaskDef {
                name: "hog",
                body: Rc::new(|ctx: &mut TaskCtx<'_>| {
                    ctx.compute(5_000)?;
                    Ok(Transition::Done)
                }),
            }],
            entry: TaskId(0),
            inventory: Inventory::default(),
            verify: None,
        };
        let mut rt = NaiveRuntime::new();
        let r = run_app(
            &app,
            &mut rt,
            &mut mcu,
            &mut p,
            &ExecConfig {
                max_attempts_per_task: 100,
                ..Default::default()
            },
        );
        assert_eq!(r.outcome, Outcome::NonTermination);
    }

    #[test]
    fn trace_records_the_execution_timeline() {
        let cfg = TimerResetConfig {
            on_min_us: 300,
            on_max_us: 900,
            off_min_us: 50,
            off_max_us: 100,
        };
        let mut mcu = Mcu::new(Supply::timer(cfg, 11));
        mcu.trace = mcu_emu::TraceSink::enabled();
        let mut p = Peripherals::new(1);
        let (app, _) = two_task_app(&mut mcu);
        let mut rt = NaiveRuntime::new();
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.events_dropped, 0);
        let events = &r.events;
        assert!(
            matches!(
                events.first(),
                Some(Event {
                    ts_us: 0,
                    kind: EventKind::Instant(InstantKind::Boot),
                    ..
                })
            ),
            "the run starts with a boot"
        );
        // Timestamps and energies are monotone.
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert!(events.windows(2).all(|w| w[0].energy_nj <= w[1].energy_nj));
        // Every power failure is eventually followed by a boot.
        for (i, ev) in events.iter().enumerate() {
            if ev.kind == EventKind::Instant(InstantKind::PowerFailure) {
                assert!(
                    events[i + 1..]
                        .iter()
                        .any(|e| e.kind == EventKind::Instant(InstantKind::Boot)),
                    "failure at index {i} not followed by a boot"
                );
            }
        }
        // Span ends match the ledger.
        let count = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count() as u64;
        assert_eq!(
            count(EventKind::SpanEnd(SpanKind::TaskAttempt, Status::Committed)),
            r.stats.task_commits
        );
        assert_eq!(
            count(EventKind::Instant(InstantKind::PowerFailure)),
            r.stats.power_failures
        );
        assert_eq!(
            count(EventKind::SpanBegin(SpanKind::TaskAttempt)),
            r.stats.task_attempts
        );
        // Power-off spans are balanced and task names label the attempts.
        assert_eq!(
            count(EventKind::SpanBegin(SpanKind::PowerOff)),
            count(EventKind::SpanEnd(SpanKind::PowerOff, Status::None))
        );
        assert!(events
            .iter()
            .any(|e| e.name == "inc" && e.kind == EventKind::SpanBegin(SpanKind::TaskAttempt)));
        // Re-execution attempts (site > 0) appear whenever failures happened
        // mid-task.
        if r.stats.task_attempts > r.stats.task_commits {
            assert!(events
                .iter()
                .any(|e| e.kind == EventKind::SpanBegin(SpanKind::TaskAttempt) && e.site > 0));
        }
        // An untraced run yields no events.
        let mut mcu2 = Mcu::new(Supply::continuous());
        let mut p2 = Peripherals::new(1);
        let (app2, _) = two_task_app(&mut mcu2);
        let mut rt2 = NaiveRuntime::new();
        let r2 = run_app(&app2, &mut rt2, &mut mcu2, &mut p2, &ExecConfig::default());
        assert!(r2.events.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = TimerResetConfig {
                on_min_us: 200,
                on_max_us: 700,
                off_min_us: 20,
                off_max_us: 80,
            };
            let mut mcu = Mcu::new(Supply::timer(cfg, seed));
            let mut p = Peripherals::new(2);
            let (app, _) = two_task_app(&mut mcu);
            let mut rt = NaiveRuntime::new();
            let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
            (r.wall_us, r.stats.power_failures, r.stats.task_attempts)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
