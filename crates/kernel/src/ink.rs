//! InK baseline (Yildirim et al. — SenSys '18).
//!
//! InK is a reactive task-based kernel that keeps each task's shared state
//! in double-buffered non-volatile memory: the task works on a working copy
//! of every task-shared variable it touches and the kernel publishes the
//! working copies when the task commits. Compared to Alpaca it buffers
//! *all* accessed variables, not only the WAR ones — which is why the
//! paper's Table 6 shows InK with the largest FRAM footprint and a heavier
//! commit.
//!
//! Like Alpaca, InK has no I/O semantics and no DMA interception: both
//! re-execute wholesale after every power failure.

use crate::error::{Fault, IoFailure};
use crate::io::{perform_dma, perform_io, IoOp};
use crate::runtime::{DmaOutcome, IoOutcome, Runtime};
use crate::semantics::{DmaAnnotation, ReexecSemantics, TaskId};
use mcu_emu::{Addr, AllocTag, Cost, Mcu, PowerFailure, RawVar, Region, WorkKind};
use periph::Peripherals;
use std::collections::HashMap;

/// The InK runtime.
#[derive(Debug, Default)]
pub struct InkRuntime {
    /// Working-copy redirection for the current activation, in first-touch
    /// order (the commit list).
    active: Vec<RawVar>,
    redirect: HashMap<RawVar, RawVar>,
    /// Persistent working-copy slots (the second halves of the double
    /// buffers), reused across activations.
    slots: HashMap<RawVar, RawVar>,
}

impl InkRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self::default()
    }

    fn working_copy(&mut self, mcu: &mut Mcu, var: RawVar) -> Result<RawVar, PowerFailure> {
        if let Some(slot) = self.redirect.get(&var) {
            return Ok(*slot);
        }
        let slot = *self.slots.entry(var).or_insert_with(|| RawVar {
            addr: mcu.mem.alloc(Region::Fram, var.width, AllocTag::Runtime),
            width: var.width,
        });
        // First touch this activation: initialize the working copy from the
        // committed buffer (kernel overhead, priced as privatization).
        mcu.with_cause(mcu_emu::EnergyCause::Commit, |m| {
            m.copy_var(WorkKind::Overhead, var, slot)
        })?;
        self.redirect.insert(var, slot);
        self.active.push(var);
        mcu.stats.bump("ink_buffered_vars");
        let (ts, e) = (mcu.now_us(), mcu.stats.total_energy_nj());
        mcu.trace.emit_with(|| {
            easeio_trace::Event::instant(
                ts,
                e,
                easeio_trace::InstantKind::Privatize,
                "double_buffer",
            )
        });
        Ok(slot)
    }

    /// Number of working-copy slots ever allocated (footprint reporting).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl Runtime for InkRuntime {
    fn name(&self) -> &'static str {
        "InK"
    }

    fn on_task_entry(
        &mut self,
        _mcu: &mut Mcu,
        _task: TaskId,
        _reexecution: bool,
    ) -> Result<(), PowerFailure> {
        // Committed buffers were never dirtied; a fresh activation simply
        // re-initializes working copies on first touch.
        self.active.clear();
        self.redirect.clear();
        Ok(())
    }

    fn commit_cost(&self, mcu: &Mcu, _task: TaskId) -> Cost {
        // Publish every working copy. Priced up front so the commit is
        // atomic (the real kernel swaps buffer indices under a commit flag
        // and finishes interrupted commits on reboot).
        let mut cost = Cost::ZERO;
        for var in &self.active {
            let w = var.words();
            cost += mcu.cost.fram_read_word.times(w);
            cost += mcu.cost.fram_write_word.times(w);
        }
        // Kernel scheduler bookkeeping per commit.
        cost + mcu.cost.flag_write.times(2)
    }

    fn commit_apply(&mut self, mcu: &mut Mcu, _task: TaskId) {
        for var in self.active.drain(..) {
            let slot = self.redirect[&var];
            let raw = slot.load(&mcu.mem);
            var.store(&mut mcu.mem, raw);
            mcu.stats.bump("ink_commit_copies");
        }
        self.redirect.clear();
    }

    fn read_var(&mut self, mcu: &mut Mcu, _task: TaskId, var: RawVar) -> Result<u64, PowerFailure> {
        if !var.addr.is_nonvolatile() {
            return mcu.load_var(WorkKind::App, var);
        }
        let slot = self.working_copy(mcu, var)?;
        mcu.load_var(WorkKind::App, slot)
    }

    fn write_var(
        &mut self,
        mcu: &mut Mcu,
        _task: TaskId,
        var: RawVar,
        raw: u64,
    ) -> Result<(), PowerFailure> {
        if !var.addr.is_nonvolatile() {
            return mcu.store_var(WorkKind::App, var, raw);
        }
        let slot = self.working_copy(mcu, var)?;
        mcu.store_var(WorkKind::App, slot, raw)
    }

    fn io_call(
        &mut self,
        mcu: &mut Mcu,
        periph: &mut Peripherals,
        task: TaskId,
        site: u16,
        op: &IoOp,
        _sem: ReexecSemantics,
        _deps: &[u16],
    ) -> Result<IoOutcome, IoFailure> {
        let value = perform_io(mcu, periph, op, task, site)?;
        Ok(IoOutcome {
            value,
            executed: true,
        })
    }

    fn io_block_begin(
        &mut self,
        _mcu: &mut Mcu,
        _task: TaskId,
        _block: u16,
        _sem: ReexecSemantics,
    ) -> Result<(), PowerFailure> {
        Ok(())
    }

    fn io_block_end(&mut self, _mcu: &mut Mcu, _task: TaskId) -> Result<(), PowerFailure> {
        Ok(())
    }

    fn dma_copy(
        &mut self,
        mcu: &mut Mcu,
        _task: TaskId,
        _site: u16,
        src: Addr,
        dst: Addr,
        bytes: u32,
        _annotation: DmaAnnotation,
        _related: &[u16],
    ) -> Result<DmaOutcome, Fault> {
        // DMA bypasses the double buffers entirely — and worse, it writes
        // the *committed* buffer, so a re-executed DMA clobbers state the
        // kernel believes is stable.
        perform_dma(mcu, src, dst, bytes, WorkKind::App)?;
        Ok(DmaOutcome { executed: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_emu::{NvVar, Scalar, Supply};

    fn mcu() -> Mcu {
        Mcu::new(Supply::continuous())
    }

    #[test]
    fn all_accessed_vars_are_buffered() {
        let mut m = mcu();
        let mut rt = InkRuntime::new();
        let t = TaskId(0);
        let a: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        let b: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        a.set(&mut m.mem, 1);
        rt.on_task_entry(&mut m, t, false).unwrap();
        // A read-only variable still gets a working copy (unlike Alpaca).
        rt.read_var(&mut m, t, a.raw()).unwrap();
        rt.write_var(&mut m, t, b.raw(), 9i32.to_raw()).unwrap();
        assert_eq!(m.stats.counter("ink_buffered_vars"), 2);
        // Committed buffer of b untouched until commit.
        assert_eq!(b.get(&m.mem), 0);
        rt.on_task_commit(&mut m, t).unwrap();
        assert_eq!(b.get(&m.mem), 9);
        assert_eq!(m.stats.counter("ink_commit_copies"), 2);
    }

    #[test]
    fn failed_attempt_leaves_committed_state_clean() {
        let mut m = mcu();
        let mut rt = InkRuntime::new();
        let t = TaskId(0);
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        v.set(&mut m.mem, 5);
        rt.on_task_entry(&mut m, t, false).unwrap();
        rt.write_var(&mut m, t, v.raw(), 6i32.to_raw()).unwrap();
        // Power failure: no commit. Master unchanged.
        assert_eq!(v.get(&m.mem), 5);
        rt.on_task_entry(&mut m, t, true).unwrap();
        let r = rt.read_var(&mut m, t, v.raw()).unwrap();
        assert_eq!(i32::from_raw(r), 5);
    }

    #[test]
    fn ink_buffers_more_than_alpaca() {
        // Same access pattern (one read-only var) → InK pays a working copy,
        // Alpaca does not. This cost asymmetry is what Table 6 reflects.
        let mut m = mcu();
        let mut rt = InkRuntime::new();
        let t = TaskId(0);
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Fram);
        rt.on_task_entry(&mut m, t, false).unwrap();
        rt.read_var(&mut m, t, v.raw()).unwrap();
        assert_eq!(rt.slot_count(), 1);

        let mut m2 = mcu();
        let mut alp = crate::alpaca::AlpacaRuntime::new();
        let v2: NvVar<i32> = NvVar::alloc(&mut m2.mem, Region::Fram);
        alp.on_task_entry(&mut m2, t, false).unwrap();
        alp.read_var(&mut m2, t, v2.raw()).unwrap();
        assert_eq!(alp.slot_count(), 0);
    }

    #[test]
    fn volatile_vars_not_buffered() {
        let mut m = mcu();
        let mut rt = InkRuntime::new();
        let t = TaskId(0);
        let v: NvVar<i32> = NvVar::alloc(&mut m.mem, Region::Sram);
        rt.on_task_entry(&mut m, t, false).unwrap();
        rt.write_var(&mut m, t, v.raw(), 3i32.to_raw()).unwrap();
        assert_eq!(v.get(&m.mem), 3);
        assert_eq!(rt.slot_count(), 0);
    }
}
