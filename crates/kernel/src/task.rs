//! Tasks, task graphs, and applications.
//!
//! A task is an atomic unit of work with all-or-nothing semantics: its body
//! runs from the top after every power failure until it completes, at which
//! point the runtime commits its state and control transfers to the next
//! task. Task bodies are ordinary Rust closures over a [`TaskCtx`]; a power
//! failure surfaces as an `Err` that the `?` operator propagates to the
//! executor, which is exactly the control flow a reboot produces on the real
//! hardware.

use crate::ctx::TaskCtx;
use crate::error::Fault;
use crate::semantics::TaskId;
use mcu_emu::Mcu;
use periph::Peripherals;
use std::rc::Rc;

/// Where control goes after a task commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Continue with the given task.
    To(TaskId),
    /// The application is finished.
    Done,
}

/// Result of one execution attempt of a task body.
pub type TaskResult = Result<Transition, Fault>;

/// The body type of a task.
pub type TaskBody = Rc<dyn Fn(&mut TaskCtx<'_>) -> TaskResult>;

/// One task of an application.
#[derive(Clone)]
pub struct TaskDef {
    /// Task name (for reports).
    pub name: &'static str,
    /// The task body; re-executed from the top after each power failure.
    pub body: TaskBody,
}

impl std::fmt::Debug for TaskDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskDef").field("name", &self.name).finish()
    }
}

/// Static inventory of an application (Table 3 of the paper and inputs to
/// the code-size model of Table 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct Inventory {
    /// Number of tasks.
    pub tasks: u32,
    /// Number of distinct I/O functions (the paper's Table 3 column).
    pub io_funcs: u32,
    /// Number of `_call_IO` call sites.
    pub io_sites: u32,
    /// Number of `_call_IO` call sites with `Timely` semantics (these carry
    /// an extra timestamp control word, paper §4.2).
    pub timely_sites: u32,
    /// Number of `_DMA_copy` call sites.
    pub dma_sites: u32,
    /// Number of I/O blocks.
    pub io_blocks: u32,
    /// Number of non-volatile application variables accessed by tasks.
    pub nv_vars: u32,
}

/// Outcome of an application-specific correctness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Final state matches continuous-power execution.
    Correct,
    /// Memory inconsistency or unsafe execution detected.
    Incorrect(String),
}

impl Verdict {
    /// Whether the run was correct.
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct)
    }
}

/// Verification closure: inspects the final MCU/peripheral state.
pub type VerifyFn = Rc<dyn Fn(&Mcu, &Peripherals) -> Verdict>;

/// An application: a task graph plus its inventory and correctness check.
#[derive(Clone)]
pub struct App {
    /// Application name.
    pub name: &'static str,
    /// The tasks; `TaskId(i)` indexes this vector.
    pub tasks: Vec<TaskDef>,
    /// Entry task.
    pub entry: TaskId,
    /// Static inventory for Tables 3 and 6.
    pub inventory: Inventory,
    /// Optional correctness check, run after completion.
    pub verify: Option<VerifyFn>,
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("App")
            .field("name", &self.name)
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

impl App {
    /// Looks up a task.
    pub fn task(&self, id: TaskId) -> &TaskDef {
        &self.tasks[id.0 as usize]
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_task(name: &'static str) -> TaskDef {
        TaskDef {
            name,
            body: Rc::new(|_| Ok(Transition::Done)),
        }
    }

    #[test]
    fn app_task_lookup() {
        let app = App {
            name: "t",
            tasks: vec![noop_task("a"), noop_task("b")],
            entry: TaskId(0),
            inventory: Inventory::default(),
            verify: None,
        };
        assert_eq!(app.task(TaskId(1)).name, "b");
        assert_eq!(app.task_count(), 2);
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Correct.is_correct());
        assert!(!Verdict::Incorrect("x".into()).is_correct());
    }

    #[test]
    fn debug_impls_do_not_recurse() {
        let t = noop_task("dbg");
        assert!(format!("{t:?}").contains("dbg"));
        let app = App {
            name: "dbg-app",
            tasks: vec![t],
            entry: TaskId(0),
            inventory: Inventory::default(),
            verify: None,
        };
        assert!(format!("{app:?}").contains("dbg-app"));
    }
}
