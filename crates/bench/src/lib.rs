//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `benches/*.rs` target (plain `harness = false` mains, so
//! `cargo bench` reproduces the full evaluation) calls into
//! [`experiments`] and prints paper-style rows via [`mod@format`]. The number
//! of seeded repetitions defaults to the paper's 1000 and can be overridden
//! with the `EASEIO_RUNS` environment variable for quick passes.

pub mod experiments;
pub mod format;

/// Number of repetitions per experiment: `EASEIO_RUNS` or the paper's 1000.
pub fn runs() -> u64 {
    std::env::var("EASEIO_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}
