//! Plain-text table rendering for experiment output.

/// Prints a titled, column-aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!();
    println!("== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("  {}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Microseconds → milliseconds with two decimals.
pub fn ms(us: u64) -> String {
    format!("{:.2}", us as f64 / 1000.0)
}

/// Nanojoules → microjoules with two decimals.
pub fn uj(nj: u64) -> String {
    format!("{:.2}", nj as f64 / 1000.0)
}

/// A percentage with one decimal.
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        return "-".into();
    }
    format!("{:.1}%", 100.0 * num as f64 / den as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(ms(1500), "1.50");
        assert_eq!(uj(2500), "2.50");
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(1, 0), "-");
    }
}
