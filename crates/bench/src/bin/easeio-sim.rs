//! easeio-sim — run any benchmark app under any runtime and supply.
//!
//! ```text
//! Usage: easeio-sim [OPTIONS]
//!   --app <dma|temp|lea|fir|weather|weather-single|branch|motion>   (default dma)
//!   --runtime <naive|alpaca|ink|easeio|easeio-op>            (default easeio)
//!   --supply <continuous|timer|rf>                           (default timer)
//!   --seed <u64>                                             (default 42)
//!   --runs <u64>                                             (default 1)
//!   --distance <inches>      RF supply distance              (default 61)
//!   --trace                  print the event timeline (single run only)
//! ```

use apps::harness::{run_once, RuntimeKind};
use apps::{dma_app, fir, lea_app, motion, temp_app, unsafe_branch, weather};
use easeio_bench::experiments::rf_supply;
use kernel::{run_app, App, ExecConfig, Outcome, Verdict};
use mcu_emu::{Mcu, Supply, TimerResetConfig, TraceEvent};
use periph::Peripherals;

struct Args {
    app: String,
    runtime: String,
    supply: String,
    seed: u64,
    runs: u64,
    distance: u64,
    trace: bool,
    source: Option<String>,
    emit_transform: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        app: "dma".into(),
        runtime: "easeio".into(),
        supply: "timer".into(),
        seed: 42,
        runs: 1,
        distance: 61,
        trace: false,
        source: None,
        emit_transform: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--app" => args.app = val("--app")?,
            "--runtime" => args.runtime = val("--runtime")?,
            "--supply" => args.supply = val("--supply")?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--runs" => args.runs = val("--runs")?.parse().map_err(|e| format!("{e}"))?,
            "--distance" => {
                args.distance = val("--distance")?.parse().map_err(|e| format!("{e}"))?
            }
            "--trace" => args.trace = true,
            "--source" => args.source = Some(val("--source")?),
            "--emit-transform" => args.emit_transform = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn build_app(args: &Args, exclude: bool, mcu: &mut Mcu) -> Result<App, String> {
    if let Some(path) = &args.source {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let compiled = easec::compile(&src, mcu).map_err(|e| format!("{path}: {e}"))?;
        return Ok(compiled.app);
    }
    let name = args.app.as_str();
    Ok(match name {
        "dma" => dma_app::build(mcu, &dma_app::DmaAppCfg::default()),
        "temp" => temp_app::build(mcu, &temp_app::TempAppCfg::default()),
        "lea" => lea_app::build(mcu, &lea_app::LeaAppCfg::default()),
        "fir" => fir::build(
            mcu,
            &fir::FirCfg {
                exclude_const_dma: exclude,
                ..fir::FirCfg::default()
            },
        ),
        "weather" => weather::build(
            mcu,
            &weather::WeatherCfg {
                exclude_const_dma: exclude,
                ..weather::WeatherCfg::default()
            },
        ),
        "weather-single" => weather::build(
            mcu,
            &weather::WeatherCfg {
                single_buffer: true,
                exclude_const_dma: exclude,
                ..weather::WeatherCfg::default()
            },
        ),
        "branch" => unsafe_branch::build(mcu, &unsafe_branch::BranchCfg::default()).0,
        "motion" => motion::build(mcu, &motion::MotionCfg::default()).0,
        other => return Err(format!("unknown app {other}")),
    })
}

fn runtime_kind(name: &str) -> Result<RuntimeKind, String> {
    Ok(match name {
        "naive" => RuntimeKind::Naive,
        "alpaca" => RuntimeKind::Alpaca,
        "ink" => RuntimeKind::Ink,
        "easeio" => RuntimeKind::EaseIo,
        "easeio-op" => RuntimeKind::EaseIoOp,
        other => return Err(format!("unknown runtime {other}")),
    })
}

fn make_supply(name: &str, seed: u64, distance: u64) -> Result<Supply, String> {
    Ok(match name {
        "continuous" => Supply::continuous(),
        "timer" => Supply::timer(TimerResetConfig::default(), seed),
        "rf" => rf_supply(distance),
        other => return Err(format!("unknown supply {other}")),
    })
}

fn print_trace(trace: &[(u64, TraceEvent)]) {
    println!("\n-- event timeline --");
    for (t, ev) in trace {
        let ms = *t as f64 / 1000.0;
        let line = match ev {
            TraceEvent::Boot => "boot".to_string(),
            TraceEvent::PowerFailure => "*** POWER FAILURE ***".to_string(),
            TraceEvent::TaskEntry(id, false) => format!("task {id} enter"),
            TraceEvent::TaskEntry(id, true) => format!("task {id} RE-EXECUTE"),
            TraceEvent::TaskCommit(id) => format!("task {id} commit"),
            TraceEvent::IoExecuted(k) => format!("  io {k}: executed"),
            TraceEvent::IoSkipped(k) => format!("  io {k}: skipped (restored)"),
            TraceEvent::DmaExecuted => "  dma: executed".to_string(),
            TraceEvent::DmaSkipped => "  dma: skipped".to_string(),
        };
        println!("{ms:>10.3} ms  {line}");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: easeio-sim [--app dma|temp|lea|fir|weather|weather-single|branch|motion]\n\
                 \x20                 [--runtime naive|alpaca|ink|easeio|easeio-op]\n\
                 \x20                 [--supply continuous|timer|rf] [--seed N] [--runs N]\n\
                 \x20                 [--distance INCHES] [--trace]\n\
                 \x20                 [--source prog.eio [--emit-transform]]"
            );
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };
    let kind = runtime_kind(&args.runtime).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2)
    });

    if args.emit_transform {
        let Some(path) = &args.source else {
            eprintln!("error: --emit-transform needs --source");
            std::process::exit(2);
        };
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2)
        });
        match easec::transform_source(&src) {
            Ok(out) => {
                println!("{out}");
                return;
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    if args.trace || args.runs == 1 {
        // Single traced run.
        let supply = make_supply(&args.supply, args.seed, args.distance).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2)
        });
        let mut mcu = Mcu::new(supply);
        if args.trace {
            mcu.stats.enable_trace();
        }
        let mut periph = Peripherals::new(args.seed);
        let app = build_app(&args, kind.excludes_const_dma(), &mut mcu).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2)
        });
        let mut rt = kind.make();
        let r = run_app(
            &app,
            rt.as_mut(),
            &mut mcu,
            &mut periph,
            &ExecConfig::default(),
        );
        println!(
            "{} under {} on {} supply (seed {})",
            app.name,
            kind.name(),
            args.supply,
            args.seed
        );
        println!("  outcome:        {:?}", r.outcome);
        if let Some(v) = &r.verdict {
            println!(
                "  correctness:    {}",
                match v {
                    Verdict::Correct => "correct".to_string(),
                    Verdict::Incorrect(why) => format!("INCORRECT — {why}"),
                }
            );
        }
        println!(
            "  time:           {:.2} ms on, {:.2} ms wall",
            r.on_us as f64 / 1000.0,
            r.wall_us as f64 / 1000.0
        );
        println!(
            "  energy:         {:.2} µJ ({:.2} app + {:.2} overhead)",
            r.stats.total_energy_nj() as f64 / 1000.0,
            r.stats.app_energy_nj as f64 / 1000.0,
            r.stats.overhead_energy_nj as f64 / 1000.0
        );
        println!("  power failures: {}", r.stats.power_failures);
        println!(
            "  I/O:            {} executed, {} skipped, {} redundant",
            r.stats.io_executed, r.stats.io_skipped, r.stats.io_reexecutions
        );
        println!(
            "  DMA:            {} executed, {} skipped, {} redundant",
            r.stats.dma_executed, r.stats.dma_skipped, r.stats.dma_reexecutions
        );
        if args.trace {
            print_trace(&r.stats.trace);
        }
        if r.outcome != Outcome::Completed {
            std::process::exit(1);
        }
        return;
    }

    // Aggregate mode.
    let mut completed = 0u64;
    let mut correct = 0u64;
    let mut total_on = 0u64;
    let mut failures = 0u64;
    for i in 0..args.runs {
        let seed = args.seed + i;
        let supply = make_supply(&args.supply, seed, args.distance).unwrap();
        let b = |m: &mut Mcu| build_app(&args, kind.excludes_const_dma(), m).unwrap();
        let r = run_once(&b, kind, supply, seed);
        if r.outcome == Outcome::Completed {
            completed += 1;
            total_on += r.stats.total_time_us();
            failures += r.stats.power_failures;
            if matches!(r.verdict, Some(Verdict::Correct) | None) {
                correct += 1;
            }
        }
    }
    println!(
        "{} × {} under {}: {}/{} completed, {}/{} correct, mean {:.2} ms, {:.2} failures/run",
        args.runs,
        args.app,
        kind.name(),
        completed,
        args.runs,
        correct,
        completed,
        total_on as f64 / completed.max(1) as f64 / 1000.0,
        failures as f64 / completed.max(1) as f64,
    );
}
