//! easeio-sim — run any benchmark app under any kernel and supply.
//!
//! Common options (accepted by every mode, parsed once into a
//! `ScenarioSpec` — the single construction surface shared with the
//! library APIs):
//!
//! ```text
//!   --app <dma|temp|lea|fir|fir-long|weather|weather-single|branch|motion|flaky-radio
//!          |ota-update>                            (default dma)
//!   --kernel <naive|alpaca|ink|easeio|easeio-op>   (default easeio;
//!                            --runtime is a deprecated alias and warns)
//!   --supply <continuous|timer|rf>                 (default timer)
//!   --distance <inches>      RF supply distance    (default 61)
//!   --seed <u64>             (default 42; sweep defaults to 7, grid to 77)
//!   --runs <u64>             repetitions            (default 1)
//!   --jobs <N>               worker threads for parallel modes (default 1)
//!   --trace-out <path>       write the trace (.json Chrome, .jsonl lines)
//!   --report-out <path>      write the machine-readable report
//!                            (--report is a deprecated alias and warns)
//!   --source <prog.eio>      compile an easec program instead of --app
//! ```
//!
//! The peripheral-fault flag group rides with the common set and is shared
//! verbatim by every subcommand:
//!
//! ```text
//!   --fault-rate <permille>  peripheral fault probability per attempt
//!                            (default 0 = no injection)
//!   --fault-seed <u64>       fault-plan seed           (default: the run seed)
//!   --max-retries <N>        bounded retries before degradation (default 4)
//! ```
//!
//! Every file-writing flag ends in `-out` (`--trace-out`, `--report-out`,
//! `--metrics-out`, `--flame-out`, `--bench-out`, `--utilization-out`,
//! `--stream-out`, `--progress-out`, `--forensics-out`); see the README
//! table. The long-running modes (`sweep`, `fleet`, `fleet --rollout`)
//! also take `--progress` (heartbeat lines on stderr about once a
//! second) and `--progress-out <path>` (the same samples as JSONL);
//! both are pure observation and never affect report identity.
//!
//! Run mode (no subcommand) adds `--trace` (print the timeline),
//! `--validate-report <path>` (schema-check any report — run, sweep,
//! metrics or fleet, v1 or v2 — and exit) and `--emit-transform` (print
//! the easec transform of `--source`).
//!
//! Subcommand `sweep` runs the deterministic power-failure sweep from the
//! `crashcheck` crate on the parallel engine: a continuous-power oracle run
//! enumerates every energy-spend boundary, then the same app is re-run with
//! a single injected failure at each chosen boundary and checked against the
//! oracle. The result is byte-identical at any `--jobs` width.
//!
//! ```text
//! Usage: easeio-sim sweep [COMMON OPTIONS] [OPTIONS]
//!   --exhaustive             inject at every boundary          (default)
//!   --sample <N>             inject at N seeded-random boundaries
//!   --boundary <N>           inject only at boundary N — the single-shot
//!                            replay form forensics repro commands use
//!   --off-us <us>            outage length per injection       (default 100000)
//!   --strict-memory          force byte-exact FRAM compare (auto for
//!                            deterministic apps: dma, fir, lea, ota-update)
//!   --update-window          inject only at boundaries inside the app's
//!                            stage→flip→activate update window (read off
//!                            the continuous-power reference trace)
//!   --all-apps               sweep every built-in app over one shared pool
//!   --no-prune               execute every boundary instead of pruning
//!                            equivalent injection points (pruning is on by
//!                            default and outcome-preserving)
//!   --bench-out <path>       write BENCH_sweep.json (wall-clock, throughput,
//!                            prune counts, per-app breakdown)
//!   --utilization-out <path> write per-worker busy-time/injection counts
//!   --allow-violations       exit 0 even if violations are found
//!   --expect-violations      exit 1 only if NO violation is found
//!   --forensics-out <path>   write a self-contained bundle for the first
//!                            violation: boundary/fault coordinates, FRAM
//!                            diff vs the oracle, verbatim repro command
//! ```
//!
//! Subcommand `grid` fans a kernel × supply-point experiment matrix (the
//! Fig. 12/13 axes) across the worker pool:
//!
//! ```text
//! Usage: easeio-sim grid [COMMON OPTIONS] [OPTIONS]
//!   --kernels <a,b,c>        kernels to compare   (default alpaca,ink,easeio)
//!   --distances <d1,d2,..>   RF distances in inches (default 52,55,58,61,64)
//!   --on-times <m1,m2,..>    timer mean on-periods in ms (default none)
//! ```
//!
//! Subcommand `fleet` replicates the device template `--devices` times over
//! a shared lossy radio medium, shards the devices across the worker pool,
//! and reconciles every transmission at a simulated gateway — exactly-once
//! accounting under device power failures and peripheral faults. The
//! report (`kind: "fleet"`) is byte-identical at any `--jobs` width.
//!
//! ```text
//! Usage: easeio-sim fleet [COMMON OPTIONS] [OPTIONS]
//!   --devices <N>            fleet size                        (default 256)
//!   --loss <permille>        per-link channel loss             (default 0)
//!   --medium-seed <u64>      loss-draw seed          (default: the run seed)
//!   --airtime-base-us <us>   per-packet airtime floor          (default 32)
//!   --airtime-word-us <us>   airtime per payload word          (default 4)
//!   --stream-out <path>      stream per-device JSONL records as devices
//!                            complete (memory-flat; device-ordered and
//!                            byte-identical at any --jobs width)
//!   --forensics-out <path>   bundle for the first air-duplicate (plain
//!                            fleet) or update-safety violation (--rollout)
//!   --allow-duplicates       exit 0 even if duplicates hit the air
//!   --expect-duplicates      exit 1 unless duplicates hit the air (the
//!                            Naive-baseline pin)
//!   --rollout                roll an OTA update (app fixed to ota-update)
//!                            wave by wave instead of a plain fleet run
//!   --wave-size <N>          devices offered the update per wave (default 32)
//!   --target-seq <N>         image sequence to roll out       (default 2)
//!   --no-abort               keep offering after a wave regression
//!   --expect-update-violations
//!                            exit 1 unless torn images or duplicate
//!                            activations occurred (the Naive pin)
//! ```
//!
//! Exit status (all modes): 0 = ran and every requested check held,
//! 1 = a verdict failed (safety violation, regression, duplicate,
//! incomplete run), 2 = usage error or malformed input.

use apps::harness::{golden, measure_footprint, run_once_faulted, run_traced_faulted, RuntimeKind};
use crashcheck::{boundary_forensics, SweepMode, SweepOutcome, SweepPlan};
use easeio_exec::{
    run_grid, sweep_matrix, sweep_matrix_observed, AppSpec, DeviceSpec, GridSpec, ScenarioSpec,
    SupplySpec, SweepEntry, SweepOptions, APP_NAMES,
};
use easeio_fleet::{
    find_air_duplicate, run_fleet_observed, run_fleet_streamed, run_rollout_observed,
    run_rollout_streamed, RolloutPolicy,
};
use easeio_trace::{
    build_fleet_report, build_forensics_report, build_metrics_report, build_profile, build_report,
    build_sweep_report, chrome_trace_with_counters, compare_metrics, flamegraph, flush_registered,
    jsonl, parse_json, validate_any_report, validate_fleet_report, validate_forensics_report,
    validate_metrics_report, CounterTrack, Event, EventKind, FaultSpecDoc, ForensicsInputs,
    ForensicsViolationDoc, FramDiffByte, FramDiffDoc, InstantKind, JsonlWriter, MetricsEntry,
    MetricsInputs, Progress, ReportInputs, SiteWasteRow, SkippedApp, SpanKind, SweepInputs,
    SweepPruneDoc, SweepTimingDoc, SweepViolation, SweepWasteDoc, TaskWasteRow, Value,
    CATEGORY_NAMES,
};
use kernel::{App, Fault, FaultSpec, Outcome, Verdict};
use mcu_emu::{CauseSample, Mcu, RunStats, Supply, DMA_SITE_BASE};
use periph::MediumSpec;

/// Warns (once per occurrence, on stderr) that a still-accepted flag
/// spelling is deprecated, and what replaces it.
fn deprecated_flag(old: &str, new: &str) {
    eprintln!("warning: {old} is deprecated; use {new}");
}

/// The peripheral-fault flag group: `--fault-rate`, `--fault-seed`,
/// `--max-retries`. One struct shared verbatim by every subcommand (run,
/// sweep, grid, fleet), so the flags parse and resolve identically
/// everywhere.
struct FaultOpts {
    rate: u32,
    seed: Option<u64>,
    max_retries: Option<u32>,
}

impl FaultOpts {
    fn new() -> Self {
        Self {
            rate: 0,
            seed: None,
            max_retries: None,
        }
    }

    /// Consumes `flag` if it belongs to the fault group.
    fn accept(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag {
            "--fault-rate" => self.rate = parse_num(&val("--fault-rate")?)?,
            "--fault-seed" => self.seed = Some(parse_num(&val("--fault-seed")?)?),
            "--max-retries" => self.max_retries = Some(parse_num(&val("--max-retries")?)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Resolves the group into a `FaultSpec`. `--fault-rate 0` (the
    /// default) disables injection entirely; the plan seed defaults to the
    /// run seed so `--fault-rate N` alone is a fully specified,
    /// reproducible experiment.
    fn into_spec(self, default_seed: u64) -> FaultSpec {
        let mut fault = FaultSpec::with_rate(self.seed.unwrap_or(default_seed), self.rate);
        if let Some(r) = self.max_retries {
            fault.retry.max_retries = r;
        }
        fault
    }
}

/// The one flag set shared by every mode. Parsed once; each subcommand adds
/// its own extras on top. `--runtime` (for `--kernel`) and `--report` (for
/// `--report-out`) are deprecated aliases that still parse but warn.
struct CommonOpts {
    app: String,
    source: Option<String>,
    kernel: String,
    supply: String,
    distance: u64,
    seed: Option<u64>,
    runs: u64,
    jobs: usize,
    trace: bool,
    trace_out: Option<String>,
    report_out: Option<String>,
    fault: FaultOpts,
}

impl CommonOpts {
    fn new() -> Self {
        Self {
            app: "dma".into(),
            source: None,
            kernel: "easeio".into(),
            supply: "timer".into(),
            distance: 61,
            seed: None,
            runs: 1,
            jobs: 1,
            trace: false,
            trace_out: None,
            report_out: None,
            fault: FaultOpts::new(),
        }
    }

    /// Consumes `flag` if it is a common option (including the embedded
    /// fault group). Returns whether it was.
    fn accept(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        if self.fault.accept(flag, it)? {
            return Ok(true);
        }
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag {
            "--app" => self.app = val("--app")?,
            "--source" => self.source = Some(val("--source")?),
            "--kernel" => self.kernel = val("--kernel")?,
            "--runtime" => {
                deprecated_flag("--runtime", "--kernel");
                self.kernel = val("--runtime")?;
            }
            "--supply" => self.supply = val("--supply")?,
            "--distance" => self.distance = parse_num(&val("--distance")?)?,
            "--seed" => self.seed = Some(parse_num(&val("--seed")?)?),
            "--runs" => self.runs = parse_num(&val("--runs")?)?,
            "--jobs" => self.jobs = parse_num::<usize>(&val("--jobs")?)?.max(1),
            "--trace" => self.trace = true,
            "--trace-out" => self.trace_out = Some(val("--trace-out")?),
            "--report-out" => self.report_out = Some(val("--report-out")?),
            "--report" => {
                deprecated_flag("--report", "--report-out");
                self.report_out = Some(val("--report")?);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Resolves the parsed strings into a 1-device [`ScenarioSpec`] (the
    /// fleet subcommand raises `count` afterwards). `default_seed` lets
    /// modes keep their historical defaults (run: 42, sweep: 7, grid: 77).
    fn into_scenario(self, default_seed: u64) -> Result<ScenarioSpec, String> {
        let kernel = RuntimeKind::parse(&self.kernel)?;
        let supply = SupplySpec::parse(&self.supply, self.distance)?;
        let app = match &self.source {
            Some(path) => AppSpec::Source(path.clone()),
            None => AppSpec::Named(self.app.clone()),
        };
        let seed = self.seed.unwrap_or(default_seed);
        let fault = self.fault.into_spec(seed);
        Ok(ScenarioSpec {
            device: DeviceSpec { app, kernel, fault },
            count: 1,
            supply,
            medium: MediumSpec::ideal(),
            seed,
            runs: self.runs,
            jobs: self.jobs,
            trace_out: self.trace_out,
            report_out: self.report_out,
        })
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("{e}"))
}

fn parse_list(s: &str) -> Result<Vec<u64>, String> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(parse_num)
        .collect()
}

fn supply_value(supply: SupplySpec) -> Value {
    match supply {
        SupplySpec::Continuous => Value::Obj(vec![("kind".into(), Value::str("continuous"))]),
        SupplySpec::Timer => Value::Obj(vec![("kind".into(), Value::str("timer"))]),
        SupplySpec::TimerOnMs(on_ms) => Value::Obj(vec![
            ("kind".into(), Value::str("timer")),
            ("on_ms".into(), Value::u64(on_ms)),
        ]),
        SupplySpec::Rf(d) => Value::Obj(vec![
            ("kind".into(), Value::str("rf")),
            ("distance_in".into(), Value::u64(d)),
        ]),
    }
}

fn print_trace(events: &[Event], dropped: u64) {
    println!("\n-- event timeline --");
    for ev in events {
        let ms = ev.ts_us as f64 / 1000.0;
        let line = match ev.kind {
            EventKind::Instant(InstantKind::PowerFailure) => "*** POWER FAILURE ***".to_string(),
            EventKind::Instant(InstantKind::Boot) => "boot".to_string(),
            EventKind::Instant(k) => format!("  {} ({})", k.label(), ev.name),
            EventKind::SpanBegin(SpanKind::TaskAttempt) => {
                if ev.site > 0 {
                    format!(
                        "task {} `{}` RE-EXECUTE (attempt {})",
                        ev.task,
                        ev.name,
                        ev.site + 1
                    )
                } else {
                    format!("task {} `{}` enter", ev.task, ev.name)
                }
            }
            EventKind::SpanBegin(SpanKind::PowerOff) => "supply off".to_string(),
            EventKind::SpanEnd(SpanKind::PowerOff, _) => "supply restored".to_string(),
            EventKind::SpanBegin(k) => format!("  {} `{}` begin", k.label(), ev.name),
            EventKind::SpanEnd(SpanKind::TaskAttempt, st) => {
                format!("task {} `{}`: {}", ev.task, ev.name, st.label())
            }
            EventKind::SpanEnd(k, st) => format!("  {} `{}`: {}", k.label(), ev.name, st.label()),
        };
        println!("{ms:>10.3} ms  {line}");
    }
    if dropped > 0 {
        println!("  ({dropped} older events dropped by the ring)");
    }
}

/// The binary's whole exit-status vocabulary, in one place. Every exit
/// path goes through [`exit`] with one of these — scripts and CI match on
/// the number, so the mapping is a documented interface (see the README's
/// exit-code table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExitCode {
    /// The requested work ran and every requested check held.
    Ok = 0,
    /// The simulation ran but a verdict failed: safety violations found
    /// (or expected and absent), duplicates on the air, a regression
    /// beyond the gate, a run that did not complete, or a built report
    /// failing its own schema.
    VerdictFailure = 1,
    /// The request itself was unusable: unknown flag or app, missing
    /// value, unreadable file, or malformed input JSON.
    Usage = 2,
}

fn exit(code: ExitCode) -> ! {
    // Drain every registered JSONL sink first: a nonzero exit must not
    // truncate a buffered stream/progress tail (ISSUE 10 satellite).
    flush_registered();
    std::process::exit(code as i32)
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {what} {path}: {e}");
        exit(ExitCode::Usage);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(ExitCode::Usage)
}

/// The CLI side of the live progress channel: owns the shared [`Progress`]
/// the engines tick and a monitor thread that samples it about once a
/// second — a heartbeat line on stderr with `--progress`, a JSONL record
/// per sample with `--progress-out`. Dropping the guard emits one final
/// sample and joins the monitor, so even sub-second runs leave a record.
struct ProgressGuard {
    progress: std::sync::Arc<Progress>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressGuard {
    /// Starts the monitor if either progress surface was requested.
    fn start(stderr_heartbeat: bool, out: Option<&str>) -> Option<ProgressGuard> {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        if !stderr_heartbeat && out.is_none() {
            return None;
        }
        let sink = out.map(|path| {
            JsonlWriter::create_registered(path)
                .unwrap_or_else(|e| die(&format!("cannot create progress log {path}: {e}")))
        });
        let progress = Arc::new(Progress::new());
        let stop = Arc::new(AtomicBool::new(false));
        let (p, s) = (progress.clone(), stop.clone());
        let handle = std::thread::spawn(move || loop {
            let done = s.load(Ordering::Relaxed);
            let snap = p.snapshot();
            // Skip the idle pre-phase sample; the final one always lands.
            if !snap.phase.is_empty() {
                if stderr_heartbeat {
                    eprintln!("{}", snap.stderr_line());
                }
                if let Some(sink) = &sink {
                    let _ = sink.lock().unwrap().write_line(&snap.to_json_line());
                }
            }
            if done {
                if let Some(sink) = &sink {
                    let _ = sink.lock().unwrap().flush();
                }
                break;
            }
            for _ in 0..10 {
                if s.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        });
        Some(ProgressGuard {
            progress,
            stop,
            handle: Some(handle),
        })
    }

    fn progress(&self) -> &Progress {
        &self.progress
    }
}

impl Drop for ProgressGuard {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The engines' optional observer from an optional guard.
fn observer(guard: &Option<ProgressGuard>) -> Option<&Progress> {
    guard.as_ref().map(|g| g.progress())
}

/// Validates and writes one `kind: "forensics"` bundle.
fn write_forensics_or_die(path: &str, inputs: &ForensicsInputs) {
    let doc = build_forensics_report(inputs);
    if let Err(errs) = validate_forensics_report(&doc) {
        eprintln!("error: built forensics bundle fails its own schema:");
        for e in &errs {
            eprintln!("  - {e}");
        }
        exit(ExitCode::VerdictFailure);
    }
    let mut text = doc.to_pretty();
    text.push('\n');
    write_or_die(path, &text, "forensics bundle");
    println!("forensics bundle written to {path}");
}

/// The app selector of a repro command (`--app NAME` or `--source PATH`).
fn app_repro_flag(app: &AppSpec) -> String {
    match app {
        AppSpec::Named(n) => format!("--app {n}"),
        AppSpec::Source(p) => format!("--source {p}"),
    }
}

/// The fault-plan flags of a repro command, empty when faults are off.
fn fault_repro_flags(fault: &FaultSpec) -> String {
    match fault.plan {
        Some(p) => format!(
            " --fault-rate {} --fault-seed {} --max-retries {}",
            p.rate_permille, p.seed, fault.retry.max_retries
        ),
        None => String::new(),
    }
}

fn outcome_label(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Completed => "completed".into(),
        Outcome::NonTermination => "non_termination".into(),
        Outcome::Fault(_) => "fault".into(),
    }
}

/// Folds one run's attribution ledger into a metrics-report entry.
fn metrics_entry(
    runtime: &str,
    app: &str,
    outcome: &Outcome,
    verdict: &Option<Verdict>,
    stats: &RunStats,
) -> MetricsEntry {
    MetricsEntry {
        runtime: runtime.into(),
        app: app.into(),
        outcome: outcome_label(outcome),
        correct: *outcome == Outcome::Completed && !matches!(verdict, Some(Verdict::Incorrect(_))),
        reboots: stats.power_failures,
        total_time_us: stats.total_time_us(),
        total_energy_nj: stats.total_energy_nj(),
        cause_time_us: stats.cause_time_us,
        cause_energy_nj: stats.cause_energy_nj,
        tasks: stats
            .cause_energy_by_task
            .iter()
            .map(|(task, energy)| TaskWasteRow {
                task: *task,
                energy_nj: *energy,
            })
            .collect(),
        redundant_sites: stats
            .redundant_energy_by_site
            .iter()
            .map(|(key, nj)| SiteWasteRow {
                site: key & !DMA_SITE_BASE,
                dma: key & DMA_SITE_BASE != 0,
                energy_nj: *nj,
            })
            .collect(),
    }
}

/// The cumulative per-cause energy samples as a Chrome counter track.
fn cause_counter_track(samples: &[CauseSample]) -> CounterTrack {
    CounterTrack {
        name: "energy by cause (nJ)".into(),
        series: CATEGORY_NAMES.iter().map(|n| (*n).to_string()).collect(),
        samples: samples
            .iter()
            .map(|s| (s.ts_us, s.energy_nj.to_vec()))
            .collect(),
    }
}

fn read_json_or_die(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        exit(ExitCode::Usage)
    });
    parse_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: invalid JSON: {e}");
        exit(ExitCode::Usage)
    })
}

// -------------------------------------------------------------- metrics --

struct MetricsArgs {
    seed: u64,
    out: Option<String>,
    flame_out: Option<String>,
    kernels: Vec<RuntimeKind>,
    apps: Vec<String>,
    include_skipped: bool,
}

fn parse_metrics_args() -> Result<MetricsArgs, String> {
    let mut seed = 42;
    let mut out = None;
    let mut flame_out = None;
    let mut kernels = vec![
        RuntimeKind::Naive,
        RuntimeKind::Alpaca,
        RuntimeKind::Ink,
        RuntimeKind::EaseIo,
    ];
    // Every benchmark app. Apps the metrics supply cannot run (`fir-long`:
    // its chunk task is a ~25 ms atomic burst, longer than the timer
    // supply's 20 ms maximum on-period, so every task-atomic runtime
    // non-terminates by construction) are reported as explicit "skipped"
    // rows instead of silently omitted; `--include-skipped` forces them to
    // run anyway.
    let mut apps: Vec<String> = APP_NAMES.iter().map(|n| (*n).to_string()).collect();
    let mut include_skipped = false;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--seed" => seed = parse_num(&val("--seed")?)?,
            "--metrics-out" => out = Some(val("--metrics-out")?),
            "--out" => {
                deprecated_flag("--out", "--metrics-out");
                out = Some(val("--out")?);
            }
            "--flame-out" => flame_out = Some(val("--flame-out")?),
            "--include-skipped" => include_skipped = true,
            "--kernels" => {
                kernels = val("--kernels")?
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(RuntimeKind::parse)
                    .collect::<Result<_, _>>()?
            }
            "--apps" => {
                apps = val("--apps")?
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(String::from)
                    .collect()
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown metrics flag {other}")),
        }
    }
    Ok(MetricsArgs {
        seed,
        out,
        flame_out,
        kernels,
        apps,
        include_skipped,
    })
}

/// `metrics`: one timer-supply run per kernel × app at a fixed seed, every
/// run's attribution ledger folded into one `kind: "metrics"` document.
/// Purely virtual-time — the document is byte-identical across hosts and
/// runs, which is what makes it committable as a CI baseline.
fn metrics_main() -> ! {
    let args = match parse_metrics_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: easeio-sim metrics [--seed N] [--metrics-out FILE.json]\n\
                 \x20                         [--flame-out FILE.json] [--kernels a,b,c]\n\
                 \x20                         [--apps x,y,z] [--include-skipped]"
            );
            exit(if e == "help" {
                ExitCode::Ok
            } else {
                ExitCode::Usage
            });
        }
    };
    // Partition the app list once, up front: apps the metrics supply cannot
    // run become explicit "skipped" rows (console + document) rather than
    // silently vanishing from the table.
    let mut skipped: Vec<SkippedApp> = Vec::new();
    let mut runnable: Vec<String> = Vec::new();
    for app_name in &args.apps {
        match AppSpec::Named(app_name.clone()).metrics_skip_reason() {
            Some(reason) if !args.include_skipped => skipped.push(SkippedApp {
                app: app_name.clone(),
                reason: reason.into(),
            }),
            _ => runnable.push(app_name.clone()),
        }
    }
    let mut entries = Vec::new();
    println!(
        "{:<8} {:<15} {:>12} {:>11} {:>7} {:>13}",
        "kernel", "app", "energy_uj", "waste_uj", "waste%", "redundant_nj"
    );
    for s in &skipped {
        println!("{:<8} {:<15} skipped: {}", "-", s.app, s.reason);
    }
    for kind in &args.kernels {
        for app_name in &runnable {
            let spec = AppSpec::Named(app_name.clone());
            // Probe build: surface bad app names before the run.
            {
                let mut probe = Mcu::new(Supply::continuous());
                if let Err(e) = spec.build(*kind, &mut probe) {
                    die(&e);
                }
            }
            let build = |m: &mut Mcu| spec.build(*kind, m).unwrap();
            let supply = SupplySpec::Timer.make(args.seed);
            let r = run_once_faulted(&build, *kind, supply, args.seed, &FaultSpec::none());
            let entry = metrics_entry(kind.name(), app_name, &r.outcome, &r.verdict, &r.stats);
            let redundant: u64 = entry.redundant_sites.iter().map(|s| s.energy_nj).sum();
            println!(
                "{:<8} {:<15} {:>12.2} {:>11.2} {:>6.1}% {:>13}",
                kind.name(),
                app_name,
                entry.total_energy_nj as f64 / 1000.0,
                entry.waste_nj() as f64 / 1000.0,
                if entry.total_energy_nj > 0 {
                    entry.waste_nj() as f64 * 100.0 / entry.total_energy_nj as f64
                } else {
                    0.0
                },
                redundant,
            );
            entries.push(entry);
        }
    }
    let inputs = MetricsInputs {
        seed: args.seed,
        entries,
        skipped,
    };
    let doc = build_metrics_report(&inputs);
    // Self-check before anything is written: a document violating the
    // attribution invariant must never become a baseline.
    if let Err(errs) = validate_metrics_report(&doc) {
        eprintln!("error: built metrics report fails its own schema:");
        for e in &errs {
            eprintln!("  - {e}");
        }
        exit(ExitCode::VerdictFailure);
    }
    if let Some(path) = &args.out {
        let mut text = doc.to_pretty();
        text.push('\n');
        write_or_die(path, &text, "metrics report");
        println!("metrics report written to {path}");
    }
    if let Some(path) = &args.flame_out {
        let mut text = flamegraph(&inputs).to_pretty();
        text.push('\n');
        write_or_die(path, &text, "flamegraph");
        println!("flamegraph written to {path}");
    }
    exit(ExitCode::Ok);
}

// -------------------------------------------------------------- compare --

/// `compare OLD NEW --gate-pct N`: regression gate over two metrics
/// reports. Exit 0 = within gate, 1 = regression found, 2 = unreadable or
/// malformed input.
fn compare_main() -> ! {
    let mut paths: Vec<String> = Vec::new();
    let mut gate_pct = 5.0;
    let mut it = std::env::args().skip(2);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate-pct" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("missing value for --gate-pct"));
                gate_pct = v
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--gate-pct: {e}")));
            }
            "--help" | "-h" => {
                eprintln!("usage: easeio-sim compare OLD.json NEW.json [--gate-pct N]");
                exit(ExitCode::Ok);
            }
            p if !p.starts_with('-') => paths.push(p.to_string()),
            other => die(&format!("unknown compare flag {other}")),
        }
    }
    if paths.len() != 2 {
        die("compare needs exactly two report paths (OLD NEW)");
    }
    let old = read_json_or_die(&paths[0]);
    let new = read_json_or_die(&paths[1]);
    match compare_metrics(&old, &new, gate_pct) {
        Err(errs) => {
            eprintln!("error: reports are not comparable:");
            for e in &errs {
                eprintln!("  - {e}");
            }
            exit(ExitCode::Usage);
        }
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "compare: {} vs {} — within the {gate_pct}% gate",
                paths[0], paths[1]
            );
            exit(ExitCode::Ok);
        }
        Ok(regressions) => {
            eprintln!(
                "compare: {} regression(s) beyond the {gate_pct}% gate:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  - {}", r.describe());
            }
            exit(ExitCode::VerdictFailure);
        }
    }
}

// ---------------------------------------------------------------- sweep --

struct SweepArgs {
    sc: ScenarioSpec,
    off_us: u64,
    sample: Option<u64>,
    strict_memory: bool,
    update_window: bool,
    all_apps: bool,
    bench_out: Option<String>,
    utilization_out: Option<String>,
    prune: bool,
    allow_violations: bool,
    expect_violations: bool,
    boundary: Option<u64>,
    forensics_out: Option<String>,
    progress: bool,
    progress_out: Option<String>,
}

fn parse_sweep_args() -> Result<SweepArgs, String> {
    let mut common = CommonOpts::new();
    let mut off_us = 100_000;
    let mut sample = None;
    let mut strict_memory = false;
    let mut update_window = false;
    let mut all_apps = false;
    let mut bench_out = None;
    let mut utilization_out = None;
    let mut prune = true;
    let mut allow_violations = false;
    let mut expect_violations = false;
    let mut boundary = None;
    let mut forensics_out = None;
    let mut progress = false;
    let mut progress_out = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        if common.accept(&flag, &mut it)? {
            continue;
        }
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--off-us" => off_us = parse_num(&val("--off-us")?)?,
            "--exhaustive" => sample = None,
            "--sample" => sample = Some(parse_num(&val("--sample")?)?),
            "--boundary" => boundary = Some(parse_num(&val("--boundary")?)?),
            "--strict-memory" => strict_memory = true,
            "--update-window" => update_window = true,
            "--all-apps" => all_apps = true,
            "--bench-out" => bench_out = Some(val("--bench-out")?),
            "--utilization-out" => utilization_out = Some(val("--utilization-out")?),
            "--forensics-out" => forensics_out = Some(val("--forensics-out")?),
            "--no-prune" => prune = false,
            "--allow-violations" => allow_violations = true,
            "--expect-violations" => expect_violations = true,
            "--progress" => progress = true,
            "--progress-out" => progress_out = Some(val("--progress-out")?),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown sweep flag {other}")),
        }
    }
    if boundary.is_some() && sample.is_some() {
        return Err("--boundary and --sample are mutually exclusive".into());
    }
    Ok(SweepArgs {
        sc: common.into_scenario(7)?,
        off_us,
        sample,
        strict_memory,
        update_window,
        all_apps,
        bench_out,
        utilization_out,
        prune,
        allow_violations,
        expect_violations,
        boundary,
        forensics_out,
        progress,
        progress_out,
    })
}

/// The engine's determinism contract, checked at run time against the
/// unpruned serial sweep: identical boundary bookkeeping, identical
/// violations in identical order, and identical energy accounting — pruning
/// must not perturb a single nanojoule.
fn outcomes_diverge(a: &SweepOutcome, b: &SweepOutcome) -> Option<String> {
    if a.oracle_boundaries != b.oracle_boundaries || a.injections != b.injections {
        return Some(format!(
            "boundary bookkeeping diverged: {}/{} vs {}/{} (oracle/injections)",
            a.oracle_boundaries, a.injections, b.oracle_boundaries, b.injections
        ));
    }
    if a.violations.len() != b.violations.len() {
        return Some(format!(
            "violation count diverged: {} vs {}",
            a.violations.len(),
            b.violations.len()
        ));
    }
    for (x, y) in a.violations.iter().zip(&b.violations) {
        if x.boundary != y.boundary || x.kind != y.kind || x.detail != y.detail {
            return Some(format!(
                "violation diverged at boundary {} vs {}: {:?} vs {:?}",
                x.boundary, y.boundary, x.kind, y.kind
            ));
        }
    }
    if a.boundary_waste_nj != b.boundary_waste_nj {
        let at = a
            .boundary_waste_nj
            .iter()
            .zip(&b.boundary_waste_nj)
            .position(|(x, y)| x != y);
        return Some(format!(
            "per-boundary waste diverged (first mismatch at injection index {at:?})"
        ));
    }
    if a.cause_energy_nj != b.cause_energy_nj {
        return Some(format!(
            "per-cause energy diverged: {:?} vs {:?}",
            a.cause_energy_nj, b.cause_energy_nj
        ));
    }
    None
}

fn sweep_report_inputs(
    out: &SweepOutcome,
    plan: &SweepPlan,
    timing: &easeio_exec::SweepTiming,
) -> SweepInputs {
    SweepInputs {
        runtime: out.runtime.into(),
        app: out.app.into(),
        seed: plan.seed,
        off_us: plan.off_us,
        mode: plan.mode.name().into(),
        oracle_boundaries: out.oracle_boundaries,
        strict_memory: plan.strict_memory,
        injections: out.injections,
        violations: out
            .violations
            .iter()
            .map(|v| SweepViolation {
                boundary: v.boundary,
                kind: v.kind.name().into(),
                detail: v.detail.clone(),
            })
            .collect(),
        fault_spec: plan.fault.plan.map(|p| FaultSpecDoc {
            seed: p.seed,
            rate_permille: p.rate_permille as u64,
            max_retries: plan.fault.retry.max_retries as u64,
            backoff_base_us: plan.fault.retry.backoff_base_us,
        }),
        waste: Some(SweepWasteDoc::from_series(
            &out.boundary_waste_nj,
            CATEGORY_NAMES
                .iter()
                .zip(out.cause_energy_nj)
                .map(|(name, nj)| ((*name).to_string(), nj))
                .collect(),
        )),
        timing: Some(SweepTimingDoc {
            jobs: timing.jobs as u64,
            wall_us: timing.wall_us,
            injections_per_sec_milli: timing.injections_per_sec_milli,
            oracle_us: timing.oracle_us,
            classify_us: timing.classify_us,
            inject_us: timing.inject_us,
            merge_us: timing.merge_us,
            injections_per_worker: timing.injections_per_worker.clone(),
            busy_us_per_worker: timing.busy_us_per_worker.clone(),
            prune: Some(SweepPruneDoc {
                enabled: timing.prune.enabled,
                injections_executed: timing.prune.injections_executed,
                injections_pruned: timing.prune.injections_pruned,
                classes: timing.prune.classes,
                time_observed: timing.prune.time_observed,
            }),
        }),
    }
}

fn sweep_main() -> ! {
    let args = match parse_sweep_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: easeio-sim sweep [--app NAME | --all-apps] [--kernel NAME] [--jobs N]\n\
                 \x20                       [--exhaustive | --sample N | --boundary N] [--seed N]\n\
                 \x20                       [--off-us US] [--strict-memory] [--update-window]\n\
                 \x20                       [--report-out FILE.json]\n\
                 \x20                       [--fault-rate PM] [--fault-seed N] [--max-retries N]\n\
                 \x20                       [--no-prune] [--bench-out BENCH_sweep.json]\n\
                 \x20                       [--utilization-out FILE.json]\n\
                 \x20                       [--forensics-out FILE.json]\n\
                 \x20                       [--progress] [--progress-out FILE.jsonl]\n\
                 \x20                       [--allow-violations] [--expect-violations]"
            );
            exit(if e == "help" {
                ExitCode::Ok
            } else {
                ExitCode::Usage
            });
        }
    };
    let sc = &args.sc;
    let apps: Vec<AppSpec> = if args.all_apps {
        if sc.report_out.is_some() {
            die("--report-out is per-app; use --bench-out with --all-apps");
        }
        APP_NAMES
            .iter()
            .map(|n| AppSpec::Named((*n).into()))
            .collect()
    } else {
        vec![sc.device.app.clone()]
    };

    let mode = match (args.boundary, args.sample) {
        (Some(b), _) => SweepMode::Boundary(b),
        (None, Some(n)) => SweepMode::Sample(n),
        (None, None) => SweepMode::Exhaustive,
    };
    // Probe-build every app up front: surface app/source errors before
    // committing to a long sweep.
    for app in &apps {
        let mut probe = Mcu::new(Supply::continuous());
        if let Err(e) = app.build(sc.device.kernel, &mut probe) {
            die(&e);
        }
    }
    let plans: Vec<SweepPlan> = apps
        .iter()
        .map(|app| SweepPlan {
            mode,
            seed: sc.seed,
            off_us: args.off_us,
            strict_memory: args.strict_memory || app.is_deterministic(),
            update_window: args.update_window,
            env_seed: sc.seed,
            fault: sc.device.fault,
        })
        .collect();
    type AppBuilder = Box<dyn Fn(&mut Mcu) -> App + Sync>;
    let builders: Vec<AppBuilder> = apps
        .iter()
        .map(|app| {
            let kernel = sc.device.kernel;
            let app = app.clone();
            Box::new(move |m: &mut Mcu| app.build(kernel, m).unwrap()) as AppBuilder
        })
        .collect();
    let entries: Vec<SweepEntry> = builders
        .iter()
        .zip(&plans)
        .map(|(b, plan)| SweepEntry {
            builder: b.as_ref(),
            kind: sc.device.kernel,
            plan: plan.clone(),
        })
        .collect();

    // One worker pool serves the whole app matrix: workers are spawned once
    // and keep a warm machine per app, instead of paying a pool spawn/join
    // and a cold snapshot adoption per app.
    let guard = ProgressGuard::start(args.progress, args.progress_out.as_deref());
    let started = std::time::Instant::now();
    let results = sweep_matrix_observed(
        &entries,
        &SweepOptions {
            jobs: sc.jobs,
            prune: args.prune,
        },
        observer(&guard),
    );
    let matrix_wall_us = (started.elapsed().as_micros() as u64).max(1);
    drop(guard);

    // With --bench-out, any sweep that could differ from the unpruned serial
    // loop (wider than one worker, or pruned) also runs that loop: it is the
    // identity gate — the engine must merge to the exact same outcome,
    // nanojoule for nanojoule — and the honest speedup baseline.
    let record_serial = args.bench_out.is_some() && (sc.jobs > 1 || args.prune);
    let serial_results = if record_serial {
        let started = std::time::Instant::now();
        let serial = sweep_matrix(
            &entries,
            &SweepOptions {
                jobs: 1,
                prune: false,
            },
        );
        Some((serial, (started.elapsed().as_micros() as u64).max(1)))
    } else {
        None
    };

    let mut total_violations = 0u64;
    let mut total_injections = 0u64;
    let mut total_executed = 0u64;
    let mut total_pruned = 0u64;
    let mut per_app = Vec::new();
    let mut per_app_util = Vec::new();
    let jobs_ran = results.first().map(|(_, t)| t.jobs).unwrap_or(1);
    let mut busy_us_per_worker = vec![0u64; jobs_ran];
    let mut injections_per_worker = vec![0u64; jobs_ran];
    for (i, (out, timing)) in results.iter().enumerate() {
        let plan = &plans[i];
        let serial_wall_us = match &serial_results {
            Some((serial, _)) => {
                if let Some(why) = outcomes_diverge(&serial[i].0, out) {
                    eprintln!(
                        "error: unpruned serial and --jobs {}{} sweeps of {} diverged: {why}",
                        sc.jobs,
                        if args.prune { " pruned" } else { "" },
                        apps[i].label()
                    );
                    exit(ExitCode::VerdictFailure);
                }
                Some(serial[i].1.wall_us)
            }
            None => None,
        };
        println!(
            "sweep: {} under {} — {} boundaries, {} injections ({}), seed {}, outage {} µs{}{}, \
             {} job(s), {:.2} ms wall ({} inj/s), {} run / {} pruned",
            out.app,
            out.runtime,
            out.oracle_boundaries,
            out.injections,
            plan.mode.name(),
            plan.seed,
            plan.off_us,
            if plan.strict_memory {
                ", strict memory"
            } else {
                ""
            },
            if plan.fault.plan.is_some() {
                format!(", faults {}", plan.fault.label())
            } else {
                String::new()
            },
            timing.jobs,
            timing.wall_us as f64 / 1000.0,
            timing
                .injections_per_sec_milli
                .map(|r| (r / 1000).to_string())
                .unwrap_or_else(|| "unmeasured".into()),
            timing.prune.injections_executed,
            timing.prune.injections_pruned,
        );
        for v in &out.violations {
            println!(
                "  boundary {:>6}: {} — {}",
                v.boundary,
                v.kind.name(),
                v.detail
            );
        }
        println!(
            "sweep result: {} violation(s) in {} injection(s)",
            out.violations.len(),
            out.injections
        );
        let waste = SweepWasteDoc::from_series(&out.boundary_waste_nj, vec![]);
        println!(
            "sweep waste: mean {} nJ, p95 {} nJ, max {} nJ per boundary",
            waste.mean_waste_nj, waste.p95_waste_nj, waste.max_waste_nj
        );
        if let Some(path) = &sc.report_out {
            let inputs = sweep_report_inputs(out, plan, timing);
            let mut doc = build_sweep_report(&inputs).to_pretty();
            doc.push('\n');
            write_or_die(path, &doc, "sweep report");
            println!("sweep report written to {path}");
        }
        total_violations += out.violations.len() as u64;
        total_injections += out.injections;
        total_executed += timing.prune.injections_executed;
        total_pruned += timing.prune.injections_pruned;
        for w in 0..timing.jobs.min(jobs_ran) {
            busy_us_per_worker[w] += timing.busy_us_per_worker[w];
            injections_per_worker[w] += timing.injections_per_worker[w];
        }
        let mut entry = vec![
            ("app".into(), Value::str(out.app)),
            ("runtime".into(), Value::str(out.runtime)),
            ("injections".into(), Value::u64(out.injections)),
            (
                "injections_executed".into(),
                Value::u64(timing.prune.injections_executed),
            ),
            (
                "injections_pruned".into(),
                Value::u64(timing.prune.injections_pruned),
            ),
            ("violations".into(), Value::u64(out.violations.len() as u64)),
            ("wall_us".into(), Value::u64(timing.wall_us)),
        ];
        if let Some(rate) = timing.injections_per_sec_milli {
            entry.push(("injections_per_sec_milli".into(), Value::u64(rate)));
        }
        // Per-app wall sums worker busy spans, which preemption inflates
        // when workers outnumber cores — so the honest speedup (elapsed vs
        // elapsed) is reported only at the matrix level, never per app.
        if let Some(serial) = serial_wall_us {
            entry.push(("serial_wall_us".into(), Value::u64(serial)));
        }
        per_app.push(Value::Obj(entry));
        per_app_util.push(Value::Obj(vec![
            ("app".into(), Value::str(out.app)),
            ("runtime".into(), Value::str(out.runtime)),
            (
                "injections_per_worker".into(),
                Value::Arr(
                    timing
                        .injections_per_worker
                        .iter()
                        .map(|&n| Value::u64(n))
                        .collect(),
                ),
            ),
            (
                "busy_us_per_worker".into(),
                Value::Arr(
                    timing
                        .busy_us_per_worker
                        .iter()
                        .map(|&n| Value::u64(n))
                        .collect(),
                ),
            ),
        ]));
    }

    if let Some(path) = &args.forensics_out {
        // The bundle documents the sweep's *first* violation in entry
        // order: boundary + spend-seq coordinates, fault plan, capped FRAM
        // diff against the continuous-power oracle, and a `--boundary`
        // repro command that re-executes exactly that injection.
        match results
            .iter()
            .enumerate()
            .find_map(|(i, (out, _))| out.violations.first().map(|v| (i, out, v)))
        {
            Some((i, out, v)) => {
                let plan = &plans[i];
                let f =
                    boundary_forensics(builders[i].as_ref(), sc.device.kernel, plan, v.boundary);
                let mut repro = format!(
                    "easeio-sim sweep {} --kernel {} --seed {} --off-us {} --boundary {}",
                    app_repro_flag(&apps[i]),
                    sc.device.kernel.cli_name(),
                    plan.seed,
                    plan.off_us,
                    v.boundary
                );
                if plan.strict_memory {
                    repro.push_str(" --strict-memory");
                }
                repro.push_str(&fault_repro_flags(&plan.fault));
                repro.push_str(" --expect-violations");
                let inputs = ForensicsInputs {
                    source: "sweep".into(),
                    runtime: out.runtime.into(),
                    app: out.app.into(),
                    seed: plan.seed,
                    violation: ForensicsViolationDoc {
                        kind: v.kind.name().into(),
                        detail: v.detail.clone(),
                        boundary: Some(v.boundary),
                        spend_seq: f.spend_seq,
                        device: None,
                        wave: None,
                    },
                    fault_spec: plan.fault.plan.map(|p| FaultSpecDoc {
                        seed: p.seed,
                        rate_permille: p.rate_permille as u64,
                        max_retries: plan.fault.retry.max_retries as u64,
                        backoff_base_us: plan.fault.retry.backoff_base_us,
                    }),
                    context: vec![
                        ("oracle_boundaries".into(), f.oracle_boundaries),
                        ("injections".into(), out.injections),
                        ("violations".into(), out.violations.len() as u64),
                        ("off_us".into(), plan.off_us),
                        ("strict_memory".into(), plan.strict_memory as u64),
                        ("update_window".into(), plan.update_window as u64),
                    ],
                    fram_diff: (f.divergent_bytes > 0).then(|| FramDiffDoc {
                        divergent_bytes: f.divergent_bytes,
                        first: f
                            .fram_diff
                            .iter()
                            .map(|&(addr, oracle, observed)| FramDiffByte {
                                addr,
                                oracle,
                                observed,
                            })
                            .collect(),
                    }),
                    repro_command: repro,
                };
                write_forensics_or_die(path, &inputs);
            }
            None => println!("forensics: no violations — nothing written to {path}"),
        }
    }

    if let Some(path) = &args.bench_out {
        let mut fields = vec![
            ("tool".into(), Value::str("easeio-sim sweep")),
            ("jobs".into(), Value::u64(sc.jobs as u64)),
            ("mode".into(), Value::str(mode.name())),
            ("seed".into(), Value::u64(sc.seed)),
            ("prune".into(), Value::Bool(args.prune)),
            ("injections".into(), Value::u64(total_injections)),
            ("injections_executed".into(), Value::u64(total_executed)),
            ("injections_pruned".into(), Value::u64(total_pruned)),
            ("violations".into(), Value::u64(total_violations)),
            ("wall_us".into(), Value::u64(matrix_wall_us)),
            (
                "injections_per_sec_milli".into(),
                Value::u64(
                    (total_injections * 1_000_000_000)
                        .checked_div(matrix_wall_us)
                        .unwrap_or(0),
                ),
            ),
        ];
        if let Some((_, serial_wall_us)) = &serial_results {
            fields.push(("serial_wall_us".into(), Value::u64(*serial_wall_us)));
            fields.push((
                "speedup_milli".into(),
                Value::u64(
                    (serial_wall_us * 1000)
                        .checked_div(matrix_wall_us)
                        .unwrap_or(0),
                ),
            ));
            println!(
                "sweep bench: --jobs {}{} is {:.2}x serial-unpruned ({:.1} ms vs {:.1} ms)",
                sc.jobs,
                if args.prune { " with pruning" } else { "" },
                *serial_wall_us as f64 / matrix_wall_us as f64,
                matrix_wall_us as f64 / 1000.0,
                *serial_wall_us as f64 / 1000.0
            );
        }
        fields.push(("apps".into(), Value::Arr(per_app)));
        let doc = Value::Obj(fields);
        let mut text = doc.to_pretty();
        text.push('\n');
        write_or_die(path, &text, "sweep bench");
        println!("sweep bench written to {path}");
    }

    if let Some(path) = &args.utilization_out {
        // Per-worker utilization of the shared pool, totalled and per app —
        // the CI artifact that shows where --jobs N actually went.
        let doc = Value::Obj(vec![
            ("tool".into(), Value::str("easeio-sim sweep")),
            ("jobs".into(), Value::u64(jobs_ran as u64)),
            ("wall_us".into(), Value::u64(matrix_wall_us)),
            (
                "injections_per_worker".into(),
                Value::Arr(
                    injections_per_worker
                        .iter()
                        .map(|&n| Value::u64(n))
                        .collect(),
                ),
            ),
            (
                "busy_us_per_worker".into(),
                Value::Arr(busy_us_per_worker.iter().map(|&n| Value::u64(n)).collect()),
            ),
            ("apps".into(), Value::Arr(per_app_util)),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        write_or_die(path, &text, "sweep utilization");
        println!("sweep utilization written to {path}");
    }

    if args.expect_violations {
        if total_violations == 0 {
            eprintln!("error: expected violations, found none");
            exit(ExitCode::VerdictFailure);
        }
        exit(ExitCode::Ok);
    }
    if total_violations > 0 && !args.allow_violations {
        exit(ExitCode::VerdictFailure);
    }
    exit(ExitCode::Ok);
}

// ----------------------------------------------------------------- grid --

struct GridArgs {
    sc: ScenarioSpec,
    spec: GridSpec,
}

fn parse_grid_args() -> Result<GridArgs, String> {
    let mut common = CommonOpts::new();
    let mut kernels: Option<Vec<RuntimeKind>> = None;
    let mut distances: Option<Vec<u64>> = None;
    let mut on_times: Vec<u64> = vec![];
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        if common.accept(&flag, &mut it)? {
            continue;
        }
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--kernels" => {
                kernels = Some(
                    val("--kernels")?
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(RuntimeKind::parse)
                        .collect::<Result<_, _>>()?,
                )
            }
            "--distances" => distances = Some(parse_list(&val("--distances")?)?),
            "--on-times" => on_times = parse_list(&val("--on-times")?)?,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown grid flag {other}")),
        }
    }
    let runs = common.runs.max(1);
    let sc = common.into_scenario(77)?;
    let mut spec = GridSpec {
        runs,
        seed: sc.seed,
        fault: sc.device.fault,
        ..GridSpec::default()
    };
    if let Some(k) = kernels {
        spec.kernels = k;
    }
    if let Some(d) = distances {
        spec.distances_inch = d;
    }
    if !on_times.is_empty() {
        spec.on_times_ms = on_times;
    }
    Ok(GridArgs { sc, spec })
}

fn grid_main() -> ! {
    let args = match parse_grid_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: easeio-sim grid [--app NAME] [--kernels a,b,c] [--distances d1,d2,..]\n\
                 \x20                      [--on-times m1,m2,..] [--runs N] [--seed N] [--jobs N]\n\
                 \x20                      [--fault-rate PM] [--fault-seed N] [--max-retries N]\n\
                 \x20                      [--report-out FILE.json]"
            );
            exit(if e == "help" {
                ExitCode::Ok
            } else {
                ExitCode::Usage
            });
        }
    };
    let sc = &args.sc;
    // Probe build once (grid apps must build under every kernel the same).
    {
        let mut probe = Mcu::new(Supply::continuous());
        if let Err(e) = sc.device.app.build(RuntimeKind::EaseIo, &mut probe) {
            die(&e);
        }
    }
    let app = &sc.device.app;
    let builder = |kind: RuntimeKind, m: &mut Mcu| app.build(kind, m).unwrap();
    let (cells, stats) = run_grid(&builder, &args.spec, sc.jobs);
    println!(
        "grid: {} — {} cells × {} run(s), {} job(s), {:.2} ms wall",
        app.label(),
        cells.len(),
        args.spec.runs,
        stats.jobs,
        stats.wall_us as f64 / 1000.0
    );
    println!(
        "{:<8} {:<12} {:>9} {:>8} {:>12} {:>12} {:>9}",
        "kernel", "supply", "completed", "correct", "mean_wall_ms", "mean_on_ms", "failures"
    );
    for c in &cells {
        println!(
            "{:<8} {:<12} {:>9} {:>8} {:>12.2} {:>12.2} {:>9}",
            c.kernel,
            c.supply,
            c.completed,
            c.correct,
            c.mean_wall_us as f64 / 1000.0,
            c.mean_on_us as f64 / 1000.0,
            c.mean_failures
        );
    }
    if let Some(path) = &sc.report_out {
        let rows = cells
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("kernel".into(), Value::str(c.kernel)),
                    ("supply".into(), Value::str(c.supply.clone())),
                    ("completed".into(), Value::u64(c.completed)),
                    ("correct".into(), Value::u64(c.correct)),
                    ("mean_wall_us".into(), Value::u64(c.mean_wall_us)),
                    ("mean_on_us".into(), Value::u64(c.mean_on_us)),
                    ("mean_failures".into(), Value::u64(c.mean_failures)),
                ])
            })
            .collect();
        let doc = Value::Obj(vec![
            ("tool".into(), Value::str("easeio-sim grid")),
            ("app".into(), Value::str(app.label().to_string())),
            ("runs".into(), Value::u64(args.spec.runs)),
            ("seed".into(), Value::u64(args.spec.seed)),
            ("cells".into(), Value::Arr(rows)),
            (
                "timing".into(),
                Value::Obj(vec![
                    ("jobs".into(), Value::u64(stats.jobs as u64)),
                    ("wall_us".into(), Value::u64(stats.wall_us)),
                ]),
            ),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        write_or_die(path, &text, "grid report");
        println!("grid report written to {path}");
    }
    exit(ExitCode::Ok);
}

// ---------------------------------------------------------------- fleet --

struct FleetArgs {
    sc: ScenarioSpec,
    allow_duplicates: bool,
    expect_duplicates: bool,
    rollout: Option<RolloutPolicy>,
    expect_update_violations: bool,
    stream_out: Option<String>,
    forensics_out: Option<String>,
    progress: bool,
    progress_out: Option<String>,
}

fn parse_fleet_args() -> Result<FleetArgs, String> {
    let mut common = CommonOpts::new();
    // The fleet's natural template is the radio relay under EaseIO; any
    // --app/--kernel combination can still be requested explicitly.
    common.app = "flaky-radio".into();
    let mut devices: u32 = 256;
    let mut loss: u32 = 0;
    let mut medium_seed: Option<u64> = None;
    let mut airtime_base: Option<u64> = None;
    let mut airtime_word: Option<u64> = None;
    let mut allow_duplicates = false;
    let mut expect_duplicates = false;
    let mut rollout = false;
    let mut wave_size: Option<u32> = None;
    let mut target_seq: Option<u32> = None;
    let mut no_abort = false;
    let mut expect_update_violations = false;
    let mut stream_out = None;
    let mut forensics_out = None;
    let mut progress = false;
    let mut progress_out = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        if common.accept(&flag, &mut it)? {
            continue;
        }
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--devices" => devices = parse_num(&val("--devices")?)?,
            "--loss" => loss = parse_num(&val("--loss")?)?,
            "--medium-seed" => medium_seed = Some(parse_num(&val("--medium-seed")?)?),
            "--airtime-base-us" => airtime_base = Some(parse_num(&val("--airtime-base-us")?)?),
            "--airtime-word-us" => airtime_word = Some(parse_num(&val("--airtime-word-us")?)?),
            "--allow-duplicates" => allow_duplicates = true,
            "--expect-duplicates" => expect_duplicates = true,
            "--rollout" => rollout = true,
            "--wave-size" => wave_size = Some(parse_num(&val("--wave-size")?)?),
            "--target-seq" => target_seq = Some(parse_num(&val("--target-seq")?)?),
            "--no-abort" => no_abort = true,
            "--expect-update-violations" => expect_update_violations = true,
            "--stream-out" => stream_out = Some(val("--stream-out")?),
            "--forensics-out" => forensics_out = Some(val("--forensics-out")?),
            "--progress" => progress = true,
            "--progress-out" => progress_out = Some(val("--progress-out")?),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown fleet flag {other}")),
        }
    }
    if devices == 0 {
        return Err("--devices must be at least 1".into());
    }
    if !rollout
        && (wave_size.is_some() || target_seq.is_some() || no_abort || expect_update_violations)
    {
        return Err(
            "--wave-size/--target-seq/--no-abort/--expect-update-violations need --rollout".into(),
        );
    }
    let mut sc = common.into_scenario(42)?;
    sc.count = devices;
    let rollout = rollout.then(|| {
        // The rollout's device workload is the OTA-update app by
        // construction; pin the spec so the report says so.
        sc.device.app = AppSpec::Named("ota-update".into());
        let defaults = RolloutPolicy::default();
        RolloutPolicy {
            target_seq: target_seq.unwrap_or(defaults.target_seq),
            wave_size: wave_size.unwrap_or(defaults.wave_size),
            abort_on_regression: !no_abort,
        }
    });
    let mut medium = MediumSpec::lossy(medium_seed.unwrap_or(sc.seed), loss);
    if let Some(b) = airtime_base {
        medium.airtime_base_us = b;
    }
    if let Some(w) = airtime_word {
        medium.airtime_us_per_word = w;
    }
    sc.medium = medium;
    Ok(FleetArgs {
        sc,
        allow_duplicates,
        expect_duplicates,
        rollout,
        expect_update_violations,
        stream_out,
        forensics_out,
        progress,
        progress_out,
    })
}

/// The `fleet --rollout` driver: rolling OTA update, convergence summary,
/// `kind: "fleet"` report with the `rollout` block, and the update-safety
/// verdict.
fn rollout_main(args: &FleetArgs, policy: &RolloutPolicy) -> ! {
    let sc = &args.sc;
    let guard = ProgressGuard::start(args.progress, args.progress_out.as_deref());
    let (s, pool, inputs, first_violation, streamed) = if let Some(path) = &args.stream_out {
        let sink = JsonlWriter::create_registered(path)
            .unwrap_or_else(|e| die(&format!("cannot create device stream {path}: {e}")));
        let mut w = sink.lock().unwrap();
        let r =
            run_rollout_streamed(sc, policy, &mut w, observer(&guard)).unwrap_or_else(|e| die(&e));
        drop(w);
        let inputs = r.report_inputs(sc);
        (r.stats, r.pool, inputs, r.first_violation, Some(r.stream))
    } else {
        let r = run_rollout_observed(sc, policy, observer(&guard)).unwrap_or_else(|e| die(&e));
        let inputs = r.report_inputs(sc);
        (
            r.stats,
            r.fleet.pool.clone(),
            inputs,
            r.first_violation,
            None,
        )
    };
    drop(guard);
    let s = &s;
    println!(
        "rollout: {} devices to image seq {} under {} on {} supply \
         (seed {}, medium {}, waves of {})",
        sc.count,
        s.target_seq,
        sc.device.kernel.name(),
        sc.supply.label(),
        sc.seed,
        sc.medium.label(),
        s.wave_size
    );
    println!(
        "  waves:      {} of {} rolled out{}",
        s.waves_rolled_out,
        s.waves,
        if s.aborted {
            " — ABORTED on a wave regression"
        } else {
            ""
        }
    );
    println!(
        "  versions:   {} on seq {}, {} on seq 1 ({} stragglers, {} stale), {} failed",
        s.updated,
        s.target_seq,
        s.stragglers + s.stale,
        s.stragglers,
        s.stale,
        s.update_failed
    );
    println!(
        "  downlink:   {} chunk transmissions, {} lost to the channel",
        s.downlink_chunks_sent, s.downlink_chunks_lost
    );
    println!(
        "  safety:     {} torn image(s), {} duplicate activation(s)",
        s.version_torn, s.duplicate_activations
    );
    println!(
        "  pool:       {} job(s), {:.2} ms wall",
        pool.jobs,
        pool.wall_us as f64 / 1000.0
    );
    if let (Some(path), Some(stream)) = (&args.stream_out, &streamed) {
        println!(
            "  stream:     {} device records -> {} ({} shard files)",
            stream.records, path, stream.shards
        );
    }
    if let Some(path) = &sc.report_out {
        let doc = build_fleet_report(&inputs);
        if let Err(errs) = validate_fleet_report(&doc) {
            eprintln!("error: built fleet report fails its own schema:");
            for e in &errs {
                eprintln!("  - {e}");
            }
            exit(ExitCode::VerdictFailure);
        }
        let mut text = doc.to_pretty();
        text.push('\n');
        write_or_die(path, &text, "fleet report");
        println!("fleet report written to {path}");
    }
    if let Some(path) = &args.forensics_out {
        match &first_violation {
            Some(v) => {
                let mut repro = format!(
                    "easeio-sim fleet --rollout --devices {} --kernel {} --seed {} \
                     --wave-size {} --target-seq {} --loss {} --medium-seed {}",
                    sc.count,
                    sc.device.kernel.cli_name(),
                    sc.seed,
                    s.wave_size,
                    s.target_seq,
                    sc.medium.loss_permille,
                    sc.medium.seed,
                );
                if !policy.abort_on_regression {
                    repro.push_str(" --no-abort");
                }
                repro.push_str(&fault_repro_flags(&sc.device.fault));
                repro.push_str(" --expect-update-violations");
                let inputs = ForensicsInputs {
                    source: "rollout".into(),
                    runtime: sc.device.kernel.name().into(),
                    app: sc.device.app.label().to_string(),
                    seed: sc.seed,
                    violation: ForensicsViolationDoc {
                        kind: v.kind.label().into(),
                        detail: format!(
                            "device {} tripped the {} probe during wave {}",
                            v.device,
                            v.kind.label(),
                            v.wave + 1
                        ),
                        boundary: None,
                        spend_seq: None,
                        device: Some(v.device as u64),
                        wave: Some(v.wave as u64 + 1),
                    },
                    fault_spec: sc.device.fault.plan.map(|p| FaultSpecDoc {
                        seed: p.seed,
                        rate_permille: p.rate_permille as u64,
                        max_retries: sc.device.fault.retry.max_retries as u64,
                        backoff_base_us: sc.device.fault.retry.backoff_base_us,
                    }),
                    context: vec![
                        ("devices".into(), sc.count as u64),
                        ("waves".into(), s.waves),
                        ("wave_size".into(), s.wave_size),
                        ("target_seq".into(), s.target_seq),
                        ("version_torn".into(), s.version_torn),
                        ("duplicate_activations".into(), s.duplicate_activations),
                    ],
                    fram_diff: None,
                    repro_command: repro,
                };
                write_forensics_or_die(path, &inputs);
            }
            None => println!("forensics: no update-safety violations — nothing written to {path}"),
        }
    }
    let violations = s.version_torn + s.duplicate_activations;
    if args.expect_update_violations {
        if violations == 0 {
            eprintln!("error: expected torn images or duplicate activations, found none");
            exit(ExitCode::VerdictFailure);
        }
        exit(ExitCode::Ok);
    }
    if violations > 0 {
        eprintln!(
            "error: {} torn image(s) and {} duplicate activation(s) — \
             old-or-new update atomicity violated",
            s.version_torn, s.duplicate_activations
        );
        exit(ExitCode::VerdictFailure);
    }
    exit(ExitCode::Ok);
}

fn fleet_main() -> ! {
    let args = match parse_fleet_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: easeio-sim fleet [--devices N] [--app NAME] [--kernel NAME] [--jobs N]\n\
                 \x20                       [--supply continuous|timer|rf] [--seed N]\n\
                 \x20                       [--loss PM] [--medium-seed N] [--airtime-base-us US]\n\
                 \x20                       [--airtime-word-us US] [--report-out FILE.json]\n\
                 \x20                       [--fault-rate PM] [--fault-seed N] [--max-retries N]\n\
                 \x20                       [--stream-out FILE.jsonl] [--forensics-out FILE.json]\n\
                 \x20                       [--progress] [--progress-out FILE.jsonl]\n\
                 \x20                       [--allow-duplicates | --expect-duplicates]\n\
                 \x20                       [--rollout [--wave-size N] [--target-seq N]\n\
                 \x20                        [--no-abort] [--expect-update-violations]]"
            );
            exit(if e == "help" {
                ExitCode::Ok
            } else {
                ExitCode::Usage
            });
        }
    };
    if let Some(policy) = &args.rollout {
        rollout_main(&args, policy);
    }
    let sc = &args.sc;
    let guard = ProgressGuard::start(args.progress, args.progress_out.as_deref());
    // Both execution paths land on the same commutative aggregate, so the
    // summary and report are identical; only where the per-device records
    // live differs (memory vs the streamed JSONL).
    let (o, power_failures, straggle, energy, g, pool, inputs, streamed, dup) =
        if let Some(path) = &args.stream_out {
            let sink = JsonlWriter::create_registered(path)
                .unwrap_or_else(|e| die(&format!("cannot create device stream {path}: {e}")));
            let mut w = sink.lock().unwrap();
            let r = run_fleet_streamed(sc, &mut w, observer(&guard)).unwrap_or_else(|e| die(&e));
            drop(w);
            let dup = args.forensics_out.as_ref().and_then(|_| {
                find_air_duplicate(r.packets.iter().map(|(d, p)| (*d, p.as_slice())))
            });
            (
                r.agg.outcomes(),
                r.agg.power_failures(),
                r.agg.stragglers(),
                r.agg.energy(),
                r.gateway.clone(),
                r.pool.clone(),
                r.report_inputs(sc),
                Some(r.stream),
                dup,
            )
        } else {
            let fleet = run_fleet_observed(sc, observer(&guard)).unwrap_or_else(|e| die(&e));
            let dup = args.forensics_out.as_ref().and_then(|_| {
                find_air_duplicate(
                    fleet
                        .results
                        .iter()
                        .map(|r| (r.device, r.packets.as_slice())),
                )
            });
            (
                fleet.outcomes(),
                fleet.power_failures(),
                fleet.stragglers(),
                fleet.energy(),
                fleet.gateway.clone(),
                fleet.pool.clone(),
                fleet.report_inputs(sc),
                None,
                dup,
            )
        };
    drop(guard);
    let g = &g;
    println!(
        "fleet: {} × {} under {} on {} supply (seed {}, medium {}{})",
        sc.count,
        sc.device.app.label(),
        sc.device.kernel.name(),
        sc.supply.label(),
        sc.seed,
        sc.medium.label(),
        if sc.device.fault.plan.is_some() {
            format!(", faults {}", sc.device.fault.label())
        } else {
            String::new()
        }
    );
    println!(
        "  outcomes:   {} completed / {} non-terminated / {} faulted; {} correct / {} incorrect",
        o.completed, o.non_terminated, o.faulted, o.correct, o.incorrect
    );
    println!("  reboots:    {power_failures} power failures across the fleet");
    println!(
        "  air:        {} transmissions, {} unique, {} duplicates",
        g.transmissions, g.unique_sent, g.air_duplicates
    );
    println!(
        "  delivery:   {} delivered ({} unique, {}.{}% of sent identities), \
         {} lost to collisions, {} to the channel",
        g.delivered,
        g.delivered_unique,
        g.delivery_rate_milli() / 10,
        g.delivery_rate_milli() % 10,
        g.lost_collision,
        g.lost_channel
    );
    println!(
        "  stragglers: wall p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
        straggle.p50_wall_us as f64 / 1000.0,
        straggle.p90_wall_us as f64 / 1000.0,
        straggle.p99_wall_us as f64 / 1000.0,
        straggle.max_wall_us as f64 / 1000.0
    );
    println!(
        "  energy:     {:.2} µJ fleet total",
        energy.total_energy_nj as f64 / 1000.0
    );
    println!(
        "  pool:       {} job(s), {:.2} ms wall",
        pool.jobs,
        pool.wall_us as f64 / 1000.0
    );
    if let (Some(path), Some(stream)) = (&args.stream_out, &streamed) {
        println!(
            "  stream:     {} device records -> {} ({} shard files)",
            stream.records, path, stream.shards
        );
    }
    if let Some(path) = &sc.report_out {
        let doc = build_fleet_report(&inputs);
        // Self-check before writing: a fleet document violating its own
        // accounting invariants must never leave the process.
        if let Err(errs) = validate_fleet_report(&doc) {
            eprintln!("error: built fleet report fails its own schema:");
            for e in &errs {
                eprintln!("  - {e}");
            }
            exit(ExitCode::VerdictFailure);
        }
        let mut text = doc.to_pretty();
        text.push('\n');
        write_or_die(path, &text, "fleet report");
        println!("fleet report written to {path}");
    }
    if let Some(path) = &args.forensics_out {
        match &dup {
            Some(d) => {
                let mut repro = format!(
                    "easeio-sim fleet --devices {} {} --kernel {} --seed {} \
                     --loss {} --medium-seed {}",
                    sc.count,
                    app_repro_flag(&sc.device.app),
                    sc.device.kernel.cli_name(),
                    sc.seed,
                    sc.medium.loss_permille,
                    sc.medium.seed,
                );
                repro.push_str(&fault_repro_flags(&sc.device.fault));
                repro.push_str(" --expect-duplicates");
                let inputs = ForensicsInputs {
                    source: "fleet".into(),
                    runtime: sc.device.kernel.name().into(),
                    app: sc.device.app.label().to_string(),
                    seed: sc.seed,
                    violation: ForensicsViolationDoc {
                        kind: "air_duplicate".into(),
                        detail: format!(
                            "device {} transmitted identity {} twice \
                             (packets {} and {}) — Single semantics violated",
                            d.device, d.seq, d.first_index, d.dup_index
                        ),
                        boundary: None,
                        spend_seq: None,
                        device: Some(d.device as u64),
                        wave: None,
                    },
                    fault_spec: sc.device.fault.plan.map(|p| FaultSpecDoc {
                        seed: p.seed,
                        rate_permille: p.rate_permille as u64,
                        max_retries: sc.device.fault.retry.max_retries as u64,
                        backoff_base_us: sc.device.fault.retry.backoff_base_us,
                    }),
                    context: vec![
                        ("devices".into(), sc.count as u64),
                        ("transmissions".into(), g.transmissions),
                        ("air_duplicates".into(), g.air_duplicates),
                        ("loss_permille".into(), sc.medium.loss_permille as u64),
                    ],
                    fram_diff: None,
                    repro_command: repro,
                };
                write_forensics_or_die(path, &inputs);
            }
            None => println!("forensics: no air duplicates — nothing written to {path}"),
        }
    }
    if args.expect_duplicates {
        if g.air_duplicates == 0 {
            eprintln!("error: expected duplicate transmissions, found none");
            exit(ExitCode::VerdictFailure);
        }
        exit(ExitCode::Ok);
    }
    if g.air_duplicates > 0 && !args.allow_duplicates {
        eprintln!(
            "error: {} duplicate transmission(s) hit the air — Single semantics violated",
            g.air_duplicates
        );
        exit(ExitCode::VerdictFailure);
    }
    exit(ExitCode::Ok);
}

// ------------------------------------------------------------------ run --

struct RunArgs {
    sc: ScenarioSpec,
    trace: bool,
    validate: Option<String>,
    emit_transform: bool,
    metrics_out: Option<String>,
}

fn parse_run_args() -> Result<RunArgs, String> {
    let mut common = CommonOpts::new();
    let mut validate = None;
    let mut emit_transform = false;
    let mut metrics_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if common.accept(&flag, &mut it)? {
            continue;
        }
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--validate-report" => validate = Some(val("--validate-report")?),
            "--emit-transform" => emit_transform = true,
            "--metrics-out" => metrics_out = Some(val("--metrics-out")?),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let trace = common.trace;
    Ok(RunArgs {
        sc: common.into_scenario(42)?,
        trace,
        validate,
        emit_transform,
        metrics_out,
    })
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("sweep") => sweep_main(),
        Some("grid") => grid_main(),
        Some("fleet") => fleet_main(),
        Some("metrics") => metrics_main(),
        Some("compare") => compare_main(),
        _ => {}
    }
    let args = match parse_run_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: easeio-sim [--app dma|temp|lea|fir|fir-long|weather|weather-single\n\
                 \x20                       |branch|motion|flaky-radio]\n\
                 \x20                 [--kernel naive|alpaca|ink|easeio|easeio-op]\n\
                 \x20                 [--supply continuous|timer|rf] [--seed N] [--runs N]\n\
                 \x20                 [--distance INCHES] [--trace] [--trace-out FILE.json|.jsonl]\n\
                 \x20                 [--fault-rate PM] [--fault-seed N] [--max-retries N]\n\
                 \x20                 [--report-out FILE.json] [--validate-report FILE.json]\n\
                 \x20                 [--source prog.eio [--emit-transform]]\n\
                 \x20      easeio-sim sweep --help\n\
                 \x20      easeio-sim grid --help\n\
                 \x20      easeio-sim fleet --help"
            );
            exit(if e == "help" {
                ExitCode::Ok
            } else {
                ExitCode::Usage
            });
        }
    };
    let sc = &args.sc;

    // Standalone schema check: no simulation at all. Accepts v1 and v2
    // documents of either kind through the single validator entry point.
    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            exit(ExitCode::Usage)
        });
        let doc = parse_json(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: invalid JSON: {e}");
            exit(ExitCode::Usage)
        });
        match validate_any_report(&doc) {
            Ok(kind) => {
                let version = doc
                    .get("schema_version")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                println!("{path}: valid {} report (schema v{version})", kind.label());
                return;
            }
            Err(errs) => {
                eprintln!("{path}: {} schema violation(s):", errs.len());
                for e in &errs {
                    eprintln!("  - {e}");
                }
                exit(ExitCode::VerdictFailure);
            }
        }
    }

    if args.emit_transform {
        let AppSpec::Source(path) = &sc.device.app else {
            die("--emit-transform needs --source");
        };
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            exit(ExitCode::Usage)
        });
        match easec::transform_source(&src) {
            Ok(out) => {
                println!("{out}");
                return;
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                exit(ExitCode::Usage);
            }
        }
    }

    let kind = sc.device.kernel;
    let single = args.trace
        || sc.trace_out.is_some()
        || sc.report_out.is_some()
        || args.metrics_out.is_some()
        || sc.runs == 1;
    if single {
        // Single traced run.
        let supply = sc.supply.make(sc.seed);
        // Probe build: surfaces app/source errors before committing to a run.
        let app_name = {
            let mut probe = Mcu::new(Supply::continuous());
            match sc.build_app(&mut probe) {
                Ok(app) => app.name,
                Err(e) => die(&e),
            }
        };
        let build = |m: &mut Mcu| sc.build_app(m).unwrap();
        let r = run_traced_faulted(&build, kind, supply, sc.seed, &sc.device.fault);
        println!(
            "{} under {} on {} supply (seed {}{})",
            app_name,
            kind.name(),
            sc.supply.label(),
            sc.seed,
            if sc.device.fault.plan.is_some() {
                format!(", faults {}", sc.device.fault.label())
            } else {
                String::new()
            }
        );
        println!("  outcome:        {:?}", r.outcome);
        if let Some(v) = &r.verdict {
            println!(
                "  correctness:    {}",
                match v {
                    Verdict::Correct => "correct".to_string(),
                    Verdict::Incorrect(why) => format!("INCORRECT — {why}"),
                }
            );
        }
        println!(
            "  time:           {:.2} ms on, {:.2} ms wall",
            r.on_us as f64 / 1000.0,
            r.wall_us as f64 / 1000.0
        );
        println!(
            "  energy:         {:.2} µJ ({:.2} app + {:.2} overhead)",
            r.stats.total_energy_nj() as f64 / 1000.0,
            r.stats.app_energy_nj as f64 / 1000.0,
            r.stats.overhead_energy_nj as f64 / 1000.0
        );
        println!("  power failures: {}", r.stats.power_failures);
        println!(
            "  I/O:            {} executed, {} skipped, {} redundant",
            r.stats.io_executed, r.stats.io_skipped, r.stats.io_reexecutions
        );
        println!(
            "  DMA:            {} executed, {} skipped, {} redundant",
            r.stats.dma_executed, r.stats.dma_skipped, r.stats.dma_reexecutions
        );
        let by_cause = CATEGORY_NAMES
            .iter()
            .zip(r.stats.cause_energy_nj)
            .filter(|(_, nj)| *nj > 0)
            .map(|(name, nj)| format!("{name} {:.2}", nj as f64 / 1000.0))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  energy by cause (µJ): {by_cause}");

        // Wasted work against a continuous-power golden run of the same
        // app/runtime, for the one-line summary and the report.
        let (golden_us, golden_nj) = golden(&build, kind, sc.seed);
        let wasted_us = r.stats.app_time_us.saturating_sub(golden_us);
        let wasted_pct = if r.stats.app_time_us > 0 {
            wasted_us as f64 * 100.0 / r.stats.app_time_us as f64
        } else {
            0.0
        };
        println!(
            "summary: {} failures, {} commits, io {} executed / {} skipped, wasted work {:.1}%",
            r.stats.power_failures,
            r.stats.task_commits,
            r.stats.io_executed,
            r.stats.io_skipped,
            wasted_pct
        );

        if args.trace {
            print_trace(&r.events, r.events_dropped);
        }
        if let Some(path) = &sc.trace_out {
            let contents = if path.ends_with(".jsonl") {
                jsonl(&r.events)
            } else {
                let counters = [cause_counter_track(&r.cause_samples)];
                let mut s = chrome_trace_with_counters(
                    &r.events,
                    &format!("{} on {}", app_name, kind.name()),
                    &counters,
                )
                .to_pretty();
                s.push('\n');
                s
            };
            write_or_die(path, &contents, "trace");
            println!("trace written to {path} ({} events)", r.events.len());
        }
        if let Some(path) = &sc.report_out {
            let profile = build_profile(&r.events);
            let fp = measure_footprint(&build, kind, sc.seed);
            let inputs = ReportInputs {
                runtime: kind.name().into(),
                app: app_name.into(),
                supply: supply_value(sc.supply),
                seed: sc.seed,
                outcome: match r.outcome {
                    Outcome::Completed => "completed".into(),
                    Outcome::NonTermination => "non_termination".into(),
                    Outcome::Fault(_) => "fault".into(),
                },
                correct: r.verdict.as_ref().map(|v| matches!(v, Verdict::Correct)),
                wall_us: r.wall_us,
                on_us: r.on_us,
                app_time_us: r.stats.app_time_us,
                overhead_time_us: r.stats.overhead_time_us,
                app_energy_nj: r.stats.app_energy_nj,
                overhead_energy_nj: r.stats.overhead_energy_nj,
                golden_app_time_us: golden_us,
                golden_app_energy_nj: golden_nj,
                power_failures: r.stats.power_failures,
                task_attempts: r.stats.task_attempts,
                task_commits: r.stats.task_commits,
                io_executed: r.stats.io_executed,
                io_skipped: r.stats.io_skipped,
                io_reexecutions: r.stats.io_reexecutions,
                dma_executed: r.stats.dma_executed,
                dma_skipped: r.stats.dma_skipped,
                dma_reexecutions: r.stats.dma_reexecutions,
                memory: Some((fp.text, fp.ram, fp.fram)),
                events_recorded: r.events.len() as u64,
                events_dropped: r.events_dropped,
            };
            let mut doc = build_report(&inputs, &profile).to_pretty();
            doc.push('\n');
            write_or_die(path, &doc, "report");
            println!("report written to {path}");
        }
        if let Some(path) = &args.metrics_out {
            let inputs = MetricsInputs {
                seed: sc.seed,
                entries: vec![metrics_entry(
                    kind.name(),
                    app_name,
                    &r.outcome,
                    &r.verdict,
                    &r.stats,
                )],
                skipped: Vec::new(),
            };
            let mut doc = build_metrics_report(&inputs).to_pretty();
            doc.push('\n');
            write_or_die(path, &doc, "metrics report");
            println!("metrics report written to {path}");
        }
        if let Outcome::Fault(e) = &r.outcome {
            // Typed abort message: an unrecoverable I/O fault (retries
            // exhausted, no degradation possible) reads differently from a
            // DMA resource fault.
            let what = match e {
                Fault::Io(_) => "unrecoverable I/O fault",
                _ => "DMA fault",
            };
            eprintln!("error: aborted on {what}: {e}");
        }
        if r.outcome != Outcome::Completed {
            exit(ExitCode::VerdictFailure);
        }
        return;
    }

    // Aggregate mode.
    let mut completed = 0u64;
    let mut correct = 0u64;
    let mut total_on = 0u64;
    let mut failures = 0u64;
    let mut commits = 0u64;
    let mut io_executed = 0u64;
    let mut io_skipped = 0u64;
    let mut app_us = 0u64;
    for i in 0..sc.runs {
        let seed = sc.seed + i;
        let supply = sc.supply_for_run(i);
        let b = |m: &mut Mcu| sc.build_app(m).unwrap();
        let r = apps::harness::run_once_faulted(&b, kind, supply, seed, &sc.device.fault);
        if r.outcome == Outcome::Completed {
            completed += 1;
            total_on += r.stats.total_time_us();
            failures += r.stats.power_failures;
            commits += r.stats.task_commits;
            io_executed += r.stats.io_executed;
            io_skipped += r.stats.io_skipped;
            app_us += r.stats.app_time_us;
            if matches!(r.verdict, Some(Verdict::Correct) | None) {
                correct += 1;
            }
        }
    }
    println!(
        "{} × {} under {}: {}/{} completed, {}/{} correct, mean {:.2} ms, {:.2} failures/run",
        sc.runs,
        sc.device.app.label(),
        kind.name(),
        completed,
        sc.runs,
        correct,
        completed,
        total_on as f64 / completed.max(1) as f64 / 1000.0,
        failures as f64 / completed.max(1) as f64,
    );
    let b = |m: &mut Mcu| sc.build_app(m).unwrap();
    let (golden_us, _) = golden(&b, kind, sc.seed);
    let wasted = app_us.saturating_sub(golden_us * completed);
    let wasted_pct = if app_us > 0 {
        wasted as f64 * 100.0 / app_us as f64
    } else {
        0.0
    };
    println!(
        "summary: {} failures, {} commits, io {} executed / {} skipped, wasted work {:.1}%",
        failures, commits, io_executed, io_skipped, wasted_pct
    );
}
