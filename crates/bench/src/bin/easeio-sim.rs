//! easeio-sim — run any benchmark app under any runtime and supply.
//!
//! ```text
//! Usage: easeio-sim [OPTIONS]
//!   --app <dma|temp|lea|fir|weather|weather-single|branch|motion>   (default dma)
//!   --runtime <naive|alpaca|ink|easeio|easeio-op>            (default easeio)
//!   --supply <continuous|timer|rf>                           (default timer)
//!   --seed <u64>                                             (default 42)
//!   --runs <u64>                                             (default 1)
//!   --distance <inches>      RF supply distance              (default 61)
//!   --trace                  print the event timeline (single run only)
//!   --trace-out <path>       write the trace (.json Chrome, .jsonl lines)
//!   --report <path>          write the machine-readable run report
//!   --validate-report <path> check a report against the schema and exit
//! ```
//!
//! Subcommand `sweep` runs the deterministic power-failure sweep from the
//! `crashcheck` crate: a continuous-power oracle run enumerates every
//! energy-spend boundary, then the same app is re-run with a single injected
//! failure at each chosen boundary and checked against the oracle.
//!
//! ```text
//! Usage: easeio-sim sweep [OPTIONS]
//!   --app <name>             app to sweep                      (default dma)
//!   --runtime <name>         runtime under test                (default easeio)
//!   --exhaustive             inject at every boundary          (default)
//!   --sample <N>             inject at N seeded-random boundaries
//!   --seed <u64>             env + sampling seed               (default 7)
//!   --off-us <us>            outage length per injection       (default 100000)
//!   --strict-memory          force byte-exact FRAM compare (auto for
//!                            deterministic apps: dma, fir, lea)
//!   --report <path>          write the machine-readable sweep report
//!   --allow-violations       exit 0 even if violations are found
//!   --expect-violations      exit 1 only if NO violation is found
//! ```

use apps::harness::{golden, measure_footprint, run_once, run_traced, RuntimeKind};
use apps::{dma_app, fir, lea_app, motion, temp_app, unsafe_branch, weather};
use crashcheck::{sweep, SweepConfig, SweepMode};
use easeio_bench::experiments::rf_supply;
use easeio_trace::{
    build_profile, build_report, build_sweep_report, chrome_trace, jsonl, parse_json,
    validate_report, validate_sweep_report, Event, EventKind, InstantKind, ReportInputs, SpanKind,
    SweepInputs, SweepViolation, Value,
};
use kernel::{App, Outcome, Verdict};
use mcu_emu::{Mcu, Supply, TimerResetConfig};

struct Args {
    app: String,
    runtime: String,
    supply: String,
    seed: u64,
    runs: u64,
    distance: u64,
    trace: bool,
    trace_out: Option<String>,
    report: Option<String>,
    validate: Option<String>,
    source: Option<String>,
    emit_transform: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        app: "dma".into(),
        runtime: "easeio".into(),
        supply: "timer".into(),
        seed: 42,
        runs: 1,
        distance: 61,
        trace: false,
        trace_out: None,
        report: None,
        validate: None,
        source: None,
        emit_transform: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--app" => args.app = val("--app")?,
            "--runtime" => args.runtime = val("--runtime")?,
            "--supply" => args.supply = val("--supply")?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--runs" => args.runs = val("--runs")?.parse().map_err(|e| format!("{e}"))?,
            "--distance" => {
                args.distance = val("--distance")?.parse().map_err(|e| format!("{e}"))?
            }
            "--trace" => args.trace = true,
            "--trace-out" => args.trace_out = Some(val("--trace-out")?),
            "--report" => args.report = Some(val("--report")?),
            "--validate-report" => args.validate = Some(val("--validate-report")?),
            "--source" => args.source = Some(val("--source")?),
            "--emit-transform" => args.emit_transform = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn build_app(args: &Args, exclude: bool, mcu: &mut Mcu) -> Result<App, String> {
    if let Some(path) = &args.source {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let compiled = easec::compile(&src, mcu).map_err(|e| format!("{path}: {e}"))?;
        return Ok(compiled.app);
    }
    let name = args.app.as_str();
    Ok(match name {
        "dma" => dma_app::build(mcu, &dma_app::DmaAppCfg::default()),
        "temp" => temp_app::build(mcu, &temp_app::TempAppCfg::default()),
        "lea" => lea_app::build(mcu, &lea_app::LeaAppCfg::default()),
        "fir" => fir::build(
            mcu,
            &fir::FirCfg {
                exclude_const_dma: exclude,
                ..fir::FirCfg::default()
            },
        ),
        "weather" => weather::build(
            mcu,
            &weather::WeatherCfg {
                exclude_const_dma: exclude,
                ..weather::WeatherCfg::default()
            },
        ),
        "weather-single" => weather::build(
            mcu,
            &weather::WeatherCfg {
                single_buffer: true,
                exclude_const_dma: exclude,
                ..weather::WeatherCfg::default()
            },
        ),
        "branch" => unsafe_branch::build(mcu, &unsafe_branch::BranchCfg::default()).0,
        "motion" => motion::build(mcu, &motion::MotionCfg::default()).0,
        other => return Err(format!("unknown app {other}")),
    })
}

fn runtime_kind(name: &str) -> Result<RuntimeKind, String> {
    Ok(match name {
        "naive" => RuntimeKind::Naive,
        "alpaca" => RuntimeKind::Alpaca,
        "ink" => RuntimeKind::Ink,
        "easeio" => RuntimeKind::EaseIo,
        "easeio-op" => RuntimeKind::EaseIoOp,
        other => return Err(format!("unknown runtime {other}")),
    })
}

fn make_supply(name: &str, seed: u64, distance: u64) -> Result<Supply, String> {
    Ok(match name {
        "continuous" => Supply::continuous(),
        "timer" => Supply::timer(TimerResetConfig::default(), seed),
        "rf" => rf_supply(distance),
        other => return Err(format!("unknown supply {other}")),
    })
}

fn supply_value(args: &Args) -> Value {
    let mut fields = vec![("kind".to_string(), Value::str(args.supply.clone()))];
    if args.supply == "rf" {
        fields.push(("distance_in".into(), Value::u64(args.distance)));
    }
    Value::Obj(fields)
}

fn print_trace(events: &[Event], dropped: u64) {
    println!("\n-- event timeline --");
    for ev in events {
        let ms = ev.ts_us as f64 / 1000.0;
        let line = match ev.kind {
            EventKind::Instant(InstantKind::PowerFailure) => "*** POWER FAILURE ***".to_string(),
            EventKind::Instant(InstantKind::Boot) => "boot".to_string(),
            EventKind::Instant(k) => format!("  {} ({})", k.label(), ev.name),
            EventKind::SpanBegin(SpanKind::TaskAttempt) => {
                if ev.site > 0 {
                    format!(
                        "task {} `{}` RE-EXECUTE (attempt {})",
                        ev.task,
                        ev.name,
                        ev.site + 1
                    )
                } else {
                    format!("task {} `{}` enter", ev.task, ev.name)
                }
            }
            EventKind::SpanBegin(SpanKind::PowerOff) => "supply off".to_string(),
            EventKind::SpanEnd(SpanKind::PowerOff, _) => "supply restored".to_string(),
            EventKind::SpanBegin(k) => format!("  {} `{}` begin", k.label(), ev.name),
            EventKind::SpanEnd(SpanKind::TaskAttempt, st) => {
                format!("task {} `{}`: {}", ev.task, ev.name, st.label())
            }
            EventKind::SpanEnd(k, st) => format!("  {} `{}`: {}", k.label(), ev.name, st.label()),
        };
        println!("{ms:>10.3} ms  {line}");
    }
    if dropped > 0 {
        println!("  ({dropped} older events dropped by the ring)");
    }
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {what} {path}: {e}");
        std::process::exit(2);
    }
}

/// Apps whose final memory is a pure function of the seed: no sensed
/// environment values reach application state, so byte-exact comparison
/// against the continuous-power oracle is sound.
fn deterministic_app(name: &str) -> bool {
    matches!(name, "dma" | "fir" | "lea")
}

struct SweepArgs {
    app: String,
    runtime: String,
    seed: u64,
    off_us: u64,
    sample: Option<u64>,
    strict_memory: bool,
    report: Option<String>,
    allow_violations: bool,
    expect_violations: bool,
}

fn parse_sweep_args() -> Result<SweepArgs, String> {
    let mut args = SweepArgs {
        app: "dma".into(),
        runtime: "easeio".into(),
        seed: 7,
        off_us: 100_000,
        sample: None,
        strict_memory: false,
        report: None,
        allow_violations: false,
        expect_violations: false,
    };
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--app" => args.app = val("--app")?,
            "--runtime" => args.runtime = val("--runtime")?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--off-us" => args.off_us = val("--off-us")?.parse().map_err(|e| format!("{e}"))?,
            "--exhaustive" => args.sample = None,
            "--sample" => args.sample = Some(val("--sample")?.parse().map_err(|e| format!("{e}"))?),
            "--strict-memory" => args.strict_memory = true,
            "--report" => args.report = Some(val("--report")?),
            "--allow-violations" => args.allow_violations = true,
            "--expect-violations" => args.expect_violations = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown sweep flag {other}")),
        }
    }
    Ok(args)
}

fn sweep_main() -> ! {
    let args = match parse_sweep_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: easeio-sim sweep [--app dma|temp|lea|fir|weather|weather-single|branch|motion]\n\
                 \x20                       [--runtime naive|alpaca|ink|easeio|easeio-op]\n\
                 \x20                       [--exhaustive | --sample N] [--seed N] [--off-us US]\n\
                 \x20                       [--strict-memory] [--report FILE.json]\n\
                 \x20                       [--allow-violations] [--expect-violations]"
            );
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };
    let kind = runtime_kind(&args.runtime).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2)
    });
    let single_args = Args {
        app: args.app.clone(),
        runtime: args.runtime.clone(),
        supply: "continuous".into(),
        seed: args.seed,
        runs: 1,
        distance: 61,
        trace: false,
        trace_out: None,
        report: None,
        validate: None,
        source: None,
        emit_transform: false,
    };
    // Probe build: surface app errors before the sweep.
    {
        let mut probe = Mcu::new(Supply::continuous());
        if let Err(e) = build_app(&single_args, kind.excludes_const_dma(), &mut probe) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    let build = |m: &mut Mcu| build_app(&single_args, kind.excludes_const_dma(), m).unwrap();
    let cfg = SweepConfig {
        mode: match args.sample {
            Some(n) => SweepMode::Sample(n),
            None => SweepMode::Exhaustive,
        },
        seed: args.seed,
        off_us: args.off_us,
        strict_memory: args.strict_memory || deterministic_app(&args.app),
    };
    let out = sweep(&build, kind, args.seed, &cfg);
    println!(
        "sweep: {} under {} — {} boundaries, {} injections ({}), seed {}, outage {} µs{}",
        out.app,
        out.runtime,
        out.oracle_boundaries,
        out.injections,
        cfg.mode.name(),
        args.seed,
        args.off_us,
        if cfg.strict_memory {
            ", strict memory"
        } else {
            ""
        }
    );
    for v in &out.violations {
        println!(
            "  boundary {:>6}: {} — {}",
            v.boundary,
            v.kind.name(),
            v.detail
        );
    }
    println!(
        "sweep result: {} violation(s) in {} injection(s)",
        out.violations.len(),
        out.injections
    );
    if let Some(path) = &args.report {
        let inputs = SweepInputs {
            runtime: out.runtime.into(),
            app: out.app.into(),
            seed: args.seed,
            off_us: args.off_us,
            mode: cfg.mode.name().into(),
            oracle_boundaries: out.oracle_boundaries,
            strict_memory: cfg.strict_memory,
            injections: out.injections,
            violations: out
                .violations
                .iter()
                .map(|v| SweepViolation {
                    boundary: v.boundary,
                    kind: v.kind.name().into(),
                    detail: v.detail.clone(),
                })
                .collect(),
        };
        let mut doc = build_sweep_report(&inputs).to_pretty();
        doc.push('\n');
        write_or_die(path, &doc, "sweep report");
        println!("sweep report written to {path}");
    }
    if args.expect_violations {
        if out.is_clean() {
            eprintln!("error: expected violations, found none");
            std::process::exit(1);
        }
        std::process::exit(0);
    }
    if !out.is_clean() && !args.allow_violations {
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("sweep") {
        sweep_main();
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: easeio-sim [--app dma|temp|lea|fir|weather|weather-single|branch|motion]\n\
                 \x20                 [--runtime naive|alpaca|ink|easeio|easeio-op]\n\
                 \x20                 [--supply continuous|timer|rf] [--seed N] [--runs N]\n\
                 \x20                 [--distance INCHES] [--trace] [--trace-out FILE.json|.jsonl]\n\
                 \x20                 [--report FILE.json] [--validate-report FILE.json]\n\
                 \x20                 [--source prog.eio [--emit-transform]]"
            );
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };

    // Standalone schema check: no simulation at all.
    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2)
        });
        let doc = parse_json(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: invalid JSON: {e}");
            std::process::exit(1)
        });
        let is_sweep = doc.get("tool").and_then(Value::as_str) == Some("easeio-sim sweep");
        let result = if is_sweep {
            validate_sweep_report(&doc)
        } else {
            validate_report(&doc)
        };
        match result {
            Ok(()) => {
                println!(
                    "{path}: valid {} report (schema v{})",
                    if is_sweep { "sweep" } else { "run" },
                    easeio_trace::SCHEMA_VERSION
                );
                return;
            }
            Err(errs) => {
                eprintln!("{path}: {} schema violation(s):", errs.len());
                for e in &errs {
                    eprintln!("  - {e}");
                }
                std::process::exit(1);
            }
        }
    }

    let kind = runtime_kind(&args.runtime).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2)
    });

    if args.emit_transform {
        let Some(path) = &args.source else {
            eprintln!("error: --emit-transform needs --source");
            std::process::exit(2);
        };
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2)
        });
        match easec::transform_source(&src) {
            Ok(out) => {
                println!("{out}");
                return;
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let single = args.trace || args.trace_out.is_some() || args.report.is_some() || args.runs == 1;
    if single {
        // Single traced run.
        let supply = make_supply(&args.supply, args.seed, args.distance).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2)
        });
        // Probe build: surfaces app/source errors before committing to a run.
        let app_name = {
            let mut probe = Mcu::new(Supply::continuous());
            match build_app(&args, kind.excludes_const_dma(), &mut probe) {
                Ok(app) => app.name,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2)
                }
            }
        };
        let build = |m: &mut Mcu| build_app(&args, kind.excludes_const_dma(), m).unwrap();
        let r = run_traced(&build, kind, supply, args.seed);
        println!(
            "{} under {} on {} supply (seed {})",
            app_name,
            kind.name(),
            args.supply,
            args.seed
        );
        println!("  outcome:        {:?}", r.outcome);
        if let Some(v) = &r.verdict {
            println!(
                "  correctness:    {}",
                match v {
                    Verdict::Correct => "correct".to_string(),
                    Verdict::Incorrect(why) => format!("INCORRECT — {why}"),
                }
            );
        }
        println!(
            "  time:           {:.2} ms on, {:.2} ms wall",
            r.on_us as f64 / 1000.0,
            r.wall_us as f64 / 1000.0
        );
        println!(
            "  energy:         {:.2} µJ ({:.2} app + {:.2} overhead)",
            r.stats.total_energy_nj() as f64 / 1000.0,
            r.stats.app_energy_nj as f64 / 1000.0,
            r.stats.overhead_energy_nj as f64 / 1000.0
        );
        println!("  power failures: {}", r.stats.power_failures);
        println!(
            "  I/O:            {} executed, {} skipped, {} redundant",
            r.stats.io_executed, r.stats.io_skipped, r.stats.io_reexecutions
        );
        println!(
            "  DMA:            {} executed, {} skipped, {} redundant",
            r.stats.dma_executed, r.stats.dma_skipped, r.stats.dma_reexecutions
        );

        // Wasted work against a continuous-power golden run of the same
        // app/runtime, for the one-line summary and the report.
        let (golden_us, golden_nj) = golden(&build, kind, args.seed);
        let wasted_us = r.stats.app_time_us.saturating_sub(golden_us);
        let wasted_pct = if r.stats.app_time_us > 0 {
            wasted_us as f64 * 100.0 / r.stats.app_time_us as f64
        } else {
            0.0
        };
        println!(
            "summary: {} failures, {} commits, io {} executed / {} skipped, wasted work {:.1}%",
            r.stats.power_failures,
            r.stats.task_commits,
            r.stats.io_executed,
            r.stats.io_skipped,
            wasted_pct
        );

        if args.trace {
            print_trace(&r.events, r.events_dropped);
        }
        if let Some(path) = &args.trace_out {
            let contents = if path.ends_with(".jsonl") {
                jsonl(&r.events)
            } else {
                let mut s = chrome_trace(&r.events, &format!("{} on {}", app_name, kind.name()))
                    .to_pretty();
                s.push('\n');
                s
            };
            write_or_die(path, &contents, "trace");
            println!("trace written to {path} ({} events)", r.events.len());
        }
        if let Some(path) = &args.report {
            let profile = build_profile(&r.events);
            let fp = measure_footprint(&build, kind, args.seed);
            let inputs = ReportInputs {
                runtime: kind.name().into(),
                app: app_name.into(),
                supply: supply_value(&args),
                seed: args.seed,
                outcome: match r.outcome {
                    Outcome::Completed => "completed".into(),
                    Outcome::NonTermination => "non_termination".into(),
                    Outcome::Fault(_) => "fault".into(),
                },
                correct: r.verdict.as_ref().map(|v| matches!(v, Verdict::Correct)),
                wall_us: r.wall_us,
                on_us: r.on_us,
                app_time_us: r.stats.app_time_us,
                overhead_time_us: r.stats.overhead_time_us,
                app_energy_nj: r.stats.app_energy_nj,
                overhead_energy_nj: r.stats.overhead_energy_nj,
                golden_app_time_us: golden_us,
                golden_app_energy_nj: golden_nj,
                power_failures: r.stats.power_failures,
                task_attempts: r.stats.task_attempts,
                task_commits: r.stats.task_commits,
                io_executed: r.stats.io_executed,
                io_skipped: r.stats.io_skipped,
                io_reexecutions: r.stats.io_reexecutions,
                dma_executed: r.stats.dma_executed,
                dma_skipped: r.stats.dma_skipped,
                dma_reexecutions: r.stats.dma_reexecutions,
                memory: Some((fp.text, fp.ram, fp.fram)),
                events_recorded: r.events.len() as u64,
                events_dropped: r.events_dropped,
            };
            let mut doc = build_report(&inputs, &profile).to_pretty();
            doc.push('\n');
            write_or_die(path, &doc, "report");
            println!("report written to {path}");
        }
        if let Outcome::Fault(e) = r.outcome {
            eprintln!("error: aborted on DMA fault: {e}");
        }
        if r.outcome != Outcome::Completed {
            std::process::exit(1);
        }
        return;
    }

    // Aggregate mode.
    let mut completed = 0u64;
    let mut correct = 0u64;
    let mut total_on = 0u64;
    let mut failures = 0u64;
    let mut commits = 0u64;
    let mut io_executed = 0u64;
    let mut io_skipped = 0u64;
    let mut app_us = 0u64;
    for i in 0..args.runs {
        let seed = args.seed + i;
        let supply = make_supply(&args.supply, seed, args.distance).unwrap();
        let b = |m: &mut Mcu| build_app(&args, kind.excludes_const_dma(), m).unwrap();
        let r = run_once(&b, kind, supply, seed);
        if r.outcome == Outcome::Completed {
            completed += 1;
            total_on += r.stats.total_time_us();
            failures += r.stats.power_failures;
            commits += r.stats.task_commits;
            io_executed += r.stats.io_executed;
            io_skipped += r.stats.io_skipped;
            app_us += r.stats.app_time_us;
            if matches!(r.verdict, Some(Verdict::Correct) | None) {
                correct += 1;
            }
        }
    }
    println!(
        "{} × {} under {}: {}/{} completed, {}/{} correct, mean {:.2} ms, {:.2} failures/run",
        args.runs,
        args.app,
        kind.name(),
        completed,
        args.runs,
        correct,
        completed,
        total_on as f64 / completed.max(1) as f64 / 1000.0,
        failures as f64 / completed.max(1) as f64,
    );
    let b = |m: &mut Mcu| build_app(&args, kind.excludes_const_dma(), m).unwrap();
    let (golden_us, _) = golden(&b, kind, args.seed);
    let wasted = app_us.saturating_sub(golden_us * completed);
    let wasted_pct = if app_us > 0 {
        wasted as f64 * 100.0 / app_us as f64
    } else {
        0.0
    };
    println!(
        "summary: {} failures, {} commits, io {} executed / {} skipped, wasted work {:.1}%",
        failures, commits, io_executed, io_skipped, wasted_pct
    );
}
