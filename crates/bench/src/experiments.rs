//! The experiments behind every table and figure of the paper's evaluation.
//!
//! Each function maps to one or more paper artifacts (see DESIGN.md §6 for
//! the full index) and returns structured rows; the bench targets in
//! `benches/` print them. Everything is seeded and deterministic.

use apps::dma_app::{self, DmaAppCfg};
use apps::fir::{self, FirCfg};
use apps::harness::{measure_footprint, run_many, run_once, ExperimentCfg, RuntimeKind, Summary};
use apps::lea_app::{self, LeaAppCfg};
use apps::temp_app::{self, TempAppCfg};
use apps::weather::{self, WeatherCfg};
use kernel::footprint::Footprint;
use kernel::{App, Outcome};
use mcu_emu::{Mcu, Supply, TimerResetConfig};

/// A boxed application builder.
pub type Builder = Box<dyn Fn(&mut Mcu) -> App>;

/// The three uni-task benchmarks of §5.3, one per semantic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UniApp {
    /// `Single` — NVM→NVM DMA.
    Dma,
    /// `Timely` — temperature sensing.
    Temp,
    /// `Always` — LEA FIR.
    Lea,
}

impl UniApp {
    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            UniApp::Dma => "Single (DMA)",
            UniApp::Temp => "Timely (Temp.)",
            UniApp::Lea => "Always (LEA)",
        }
    }

    /// Builder for the app.
    pub fn builder(self) -> Builder {
        match self {
            UniApp::Dma => Box::new(|mcu| dma_app::build(mcu, &DmaAppCfg::default())),
            UniApp::Temp => Box::new(|mcu| temp_app::build(mcu, &TempAppCfg::default())),
            UniApp::Lea => Box::new(|mcu| lea_app::build(mcu, &LeaAppCfg::default())),
        }
    }
}

/// Builder for the FIR app (optionally the `/Op` `Exclude` variant).
pub fn fir_builder(exclude: bool) -> Builder {
    Box::new(move |mcu| {
        fir::build(
            mcu,
            &FirCfg {
                exclude_const_dma: exclude,
                ..FirCfg::default()
            },
        )
    })
}

/// Builder for the weather app.
pub fn weather_builder(single_buffer: bool, exclude: bool) -> Builder {
    Box::new(move |mcu| {
        weather::build(
            mcu,
            &WeatherCfg {
                single_buffer,
                exclude_const_dma: exclude,
                ..WeatherCfg::default()
            },
        )
    })
}

/// Experiment configuration with `runs` repetitions and the paper's
/// controlled-failure schedule.
pub fn paper_cfg(runs: u64) -> ExperimentCfg {
    ExperimentCfg {
        runs,
        ..ExperimentCfg::default()
    }
}

/// Figure 7 / Table 4 / Figure 8 data: each uni-task app under each runtime.
pub fn uni_task_summaries(runs: u64) -> Vec<(UniApp, Vec<Summary>)> {
    let cfg = paper_cfg(runs);
    [UniApp::Dma, UniApp::Temp, UniApp::Lea]
        .into_iter()
        .map(|app| {
            let b = app.builder();
            let sums = RuntimeKind::PAPER_SET
                .iter()
                .map(|rt| run_many(app.label(), b.as_ref(), *rt, &cfg))
                .collect();
            (app, sums)
        })
        .collect()
}

/// Figure 10/11/12 data: the multi-task apps. Returns (FIR summaries
/// including EaseIO/Op, weather summaries).
pub fn multi_task_summaries(runs: u64) -> (Vec<Summary>, Vec<Summary>) {
    let cfg = paper_cfg(runs);
    let mut fir_rows = Vec::new();
    for rt in RuntimeKind::PAPER_SET {
        fir_rows.push(run_many("FIR", fir_builder(false).as_ref(), rt, &cfg));
    }
    fir_rows.push(run_many(
        "FIR",
        fir_builder(true).as_ref(),
        RuntimeKind::EaseIoOp,
        &cfg,
    ));
    let mut weather_rows = Vec::new();
    for rt in RuntimeKind::PAPER_SET {
        weather_rows.push(run_many(
            "Weather",
            weather_builder(false, false).as_ref(),
            rt,
            &cfg,
        ));
    }
    (fir_rows, weather_rows)
}

/// One Table 5 row: a runtime × buffering-strategy measurement.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Runtime name.
    pub runtime: &'static str,
    /// Buffering strategy ("double" / "single").
    pub buffering: &'static str,
    /// Continuous-power execution time (µs).
    pub continuous_us: u64,
    /// Mean intermittent execution time (µs).
    pub intermittent_us: u64,
    /// Correct runs out of `runs`.
    pub correct: u64,
    /// Completed runs.
    pub completed: u64,
}

/// Table 5: weather DNN with double vs single activation buffers.
pub fn table5(runs: u64) -> Vec<Table5Row> {
    let cfg = paper_cfg(runs);
    let mut rows = Vec::new();
    for (single, label) in [(false, "double"), (true, "single")] {
        for rt in RuntimeKind::PAPER_SET {
            let b = weather_builder(single, false);
            let cont = run_once(b.as_ref(), rt, Supply::continuous(), cfg.base_seed);
            assert_eq!(cont.outcome, Outcome::Completed);
            let s = run_many("Weather", b.as_ref(), rt, &cfg);
            rows.push(Table5Row {
                runtime: rt.name(),
                buffering: label,
                continuous_us: cont.stats.total_time_us(),
                intermittent_us: s.mean_total_us(),
                correct: s.correct,
                completed: s.completed,
            });
        }
    }
    rows
}

/// One Table 6 row: an app × runtime footprint.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Application name.
    pub app: &'static str,
    /// Runtime name.
    pub runtime: &'static str,
    /// Footprint (modeled .text, measured RAM/FRAM).
    pub footprint: Footprint,
}

/// Table 6: memory and code-size requirements.
pub fn table6() -> Vec<Table6Row> {
    let apps: Vec<(&'static str, Builder)> = vec![
        ("LEA", UniApp::Lea.builder()),
        ("DMA", UniApp::Dma.builder()),
        ("Temp.", UniApp::Temp.builder()),
        ("FIR Filter", fir_builder(false)),
        ("Weather App.", weather_builder(false, false)),
    ];
    let mut rows = Vec::new();
    for (name, b) in &apps {
        for rt in RuntimeKind::PAPER_SET {
            rows.push(Table6Row {
                app: name,
                runtime: rt.name(),
                footprint: measure_footprint(b.as_ref(), rt, 1),
            });
        }
    }
    rows
}

// The RF-harvesting supply now lives in the execution engine (it is a
// grid axis there); re-exported so every existing bench import keeps
// working.
pub use easeio_exec::supply::{rf_supply, rf_supply_phased};

/// One Figure 13 row.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Distance in inches.
    pub distance_inch: u64,
    /// (runtime name, total execution time µs, power failures).
    pub measurements: Vec<(&'static str, u64, u64)>,
}

/// Figure 13: wall-clock execution time (including recharge time, which is
/// what a wall-clock measurement on real hardware sees) across transmitter
/// distances, per runtime, reported relative to EaseIO.
///
/// Workload: the Single-semantics DMA benchmark, whose redundant
/// re-execution dominates the energy budget — redundant energy directly
/// lengthens the recharge periods, which is the compounding the paper's
/// distance sweep exposes. This workload has no constant-data DMAs, so the
/// `Exclude` variant coincides with plain EaseIO.
///
/// The harvester trajectory is deterministic; like the paper's repeated
/// physical measurements, each cell averages several runs with perturbed
/// fading-wave phases.
pub fn fig13() -> Vec<Fig13Row> {
    const PERTURBATIONS: u64 = 8;
    let distances = [52u64, 55, 58, 61, 64];
    let mut rows = Vec::new();
    for d in distances {
        let mut ms = Vec::new();
        for rt in [RuntimeKind::EaseIo, RuntimeKind::Ink, RuntimeKind::Alpaca] {
            let b: Builder = Box::new(move |mcu| {
                dma_app::build(
                    mcu,
                    &DmaAppCfg {
                        iterations: 3,
                        ..DmaAppCfg::default()
                    },
                )
            });
            let mut total = 0u64;
            let mut failures = 0u64;
            for k in 0..PERTURBATIONS {
                // Each perturbation shifts the fading-wave phase: one
                // deterministic model, eight independent trajectories.
                let supply = rf_supply_phased(d, k * 3_171);
                let r = run_once(b.as_ref(), rt, supply, 77);
                assert_eq!(
                    r.outcome,
                    Outcome::Completed,
                    "{} at {d} inches never finished",
                    rt.name()
                );
                total += r.wall_us;
                failures += r.stats.power_failures;
            }
            ms.push((rt.name(), total / PERTURBATIONS, failures / PERTURBATIONS));
        }
        rows.push(Fig13Row {
            distance_inch: d,
            measurements: ms,
        });
    }
    rows
}

/// Ablation: `Timely` window sweep on the temperature app (EaseIO only).
/// Returns (window_ms, re-executions, skips, mean total µs).
pub fn ablation_timely_window(runs: u64) -> Vec<(u64, u64, u64, u64)> {
    let cfg = paper_cfg(runs);
    [1u64, 5, 10, 20, 50, 100]
        .into_iter()
        .map(|w| {
            let b: Builder = Box::new(move |mcu| {
                temp_app::build(
                    mcu,
                    &TempAppCfg {
                        window_ms: w,
                        ..TempAppCfg::default()
                    },
                )
            });
            let s = run_many("temp", b.as_ref(), RuntimeKind::EaseIo, &cfg);
            (w, s.reexecutions(), s.io_skipped, s.mean_total_us())
        })
        .collect()
}

/// One row of the failure-intensity ablation.
#[derive(Debug, Clone)]
pub struct ResetSweepRow {
    /// Mean on-period (ms).
    pub mean_on_ms: u64,
    /// Alpaca mean total time (µs); `None` when every run livelocked (the
    /// paper's non-termination bug — the task never fits an on-period).
    pub alpaca_us: Option<u64>,
    /// EaseIO mean total time (µs); `None` on livelock.
    pub easeio_us: Option<u64>,
}

/// Ablation: failure-intensity sweep on the DMA app.
pub fn ablation_reset_period(runs: u64) -> Vec<ResetSweepRow> {
    [(4u64, 10u64), (5, 20), (10, 30), (20, 60), (40, 120)]
        .into_iter()
        .map(|(lo, hi)| {
            let cfg = ExperimentCfg {
                runs,
                reset: TimerResetConfig {
                    on_min_us: lo * 1000,
                    on_max_us: hi * 1000,
                    ..TimerResetConfig::default()
                },
                ..ExperimentCfg::default()
            };
            let b = UniApp::Dma.builder();
            let a = run_many("dma", b.as_ref(), RuntimeKind::Alpaca, &cfg);
            let e = run_many("dma", b.as_ref(), RuntimeKind::EaseIo, &cfg);
            let mean = |s: &Summary| {
                if s.completed == 0 {
                    None
                } else {
                    Some(s.mean_total_us())
                }
            };
            ResetSweepRow {
                mean_on_ms: (lo + hi) / 2,
                alpaca_us: mean(&a),
                easeio_us: mean(&e),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uni_task_shapes_hold_at_small_n() {
        let sums = uni_task_summaries(40);
        for (app, rows) in &sums {
            assert_eq!(rows.len(), 3);
            for s in rows {
                assert_eq!(s.completed, 40, "{} under {}", app.label(), s.runtime);
                assert_eq!(s.incorrect, 0, "{} under {}", app.label(), s.runtime);
            }
        }
        // Single: EaseIO re-executes far less than Alpaca.
        let dma = &sums[0].1;
        assert!(dma[2].reexecutions() * 2 < dma[0].reexecutions());
        // Always: identical physical I/O executions.
        let lea = &sums[2].1;
        assert_eq!(lea[0].io_skipped, 0);
        assert_eq!(lea[2].io_skipped, 0);
    }

    #[test]
    fn fig13_intermittency_grows_with_distance() {
        let rows = fig13();
        let failures_at = |i: usize| -> u64 { rows[i].measurements.iter().map(|m| m.2).sum() };
        assert_eq!(failures_at(0), 0, "no failures at the closest distance");
        assert!(
            failures_at(rows.len() - 1) > 0,
            "failures must appear at the farthest distance"
        );
    }

    #[test]
    fn table6_orderings() {
        let rows = table6();
        // For every app: Alpaca .text < InK .text, and EaseIO ≥ Alpaca.
        for chunk in rows.chunks(3) {
            let (a, i, e) = (&chunk[0], &chunk[1], &chunk[2]);
            assert!(a.footprint.text < i.footprint.text, "{}", a.app);
            assert!(a.footprint.text < e.footprint.text, "{}", a.app);
            assert!(a.footprint.fram <= e.footprint.fram, "{}", a.app);
        }
    }
}
