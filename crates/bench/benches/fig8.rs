//! Figure 8 — average energy consumption per run for each re-execution
//! semantic under controlled power failures.

use easeio_bench::experiments::uni_task_summaries;
use easeio_bench::format::{print_table, uj};

fn main() {
    let runs = easeio_bench::runs();
    println!("Figure 8 — mean energy per run (µJ), {runs} seeded runs");
    let data = uni_task_summaries(runs);
    let mut rows = Vec::new();
    for rt_idx in 0..3 {
        let mut row = vec![data[0].1[rt_idx].runtime.to_string()];
        for (_, sums) in &data {
            let s = &sums[rt_idx];
            row.push(uj(s.energy_nj / s.completed.max(1)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 8 — average energy per run (µJ)",
        &["runtime", "Single (DMA)", "Timely (Temp.)", "Always (LEA)"],
        &rows,
    );
    let a = data[0].1[0].energy_nj / data[0].1[0].completed.max(1);
    let e = data[0].1[2].energy_nj / data[0].1[2].completed.max(1);
    println!(
        "\nSingle-semantic energy: EaseIO/Alpaca = {:.2}  (paper: ~0.5, a one-half reduction)",
        e as f64 / a as f64
    );
}
