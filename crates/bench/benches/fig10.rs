//! Figure 10 — multi-task execution time (FIR and weather classifier)
//! decomposed into application work, overhead, and wasted work.

use easeio_bench::experiments::multi_task_summaries;
use easeio_bench::format::{ms, print_table};

fn main() {
    let runs = easeio_bench::runs();
    println!("Figure 10 — {runs} seeded runs per cell, resets U[5,20] ms");
    let (fir, weather) = multi_task_summaries(runs);
    for (title, sums) in [("FIR filter", &fir), ("Weather App.", &weather)] {
        let rows: Vec<Vec<String>> = sums
            .iter()
            .map(|s| {
                let n = s.completed.max(1);
                vec![
                    s.runtime.to_string(),
                    ms(s.mean_total_us()),
                    ms(s.useful_us() / n),
                    ms(s.overhead_us / n),
                    ms(s.wasted_us() / n),
                    ms(s.percentile_us(95)),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 10 — {title}"),
            &[
                "runtime",
                "total ms",
                "app ms",
                "overhead ms",
                "wasted ms",
                "p95 ms",
            ],
            &rows,
        );
    }
    let aw = weather[0].wasted_us() as f64;
    let ew = weather[2].wasted_us() as f64;
    println!(
        "\nWeather wasted-work ratio Alpaca/EaseIO = {:.2}x  (paper: up to 3x)",
        aw / ew.max(1.0)
    );
    println!("FIR: EaseIO pays Private-DMA privatization overhead; EaseIO/Op");
    println!("(Exclude on constant coefficients) closes most of the gap to Alpaca.");
}
