//! Table 3 — tasks and I/O functions of the evaluated applications.

use easeio_bench::experiments::{fir_builder, weather_builder, UniApp};
use easeio_bench::format::print_table;
use mcu_emu::{Mcu, Supply};

fn main() {
    let mut rows = Vec::new();
    let apps: Vec<(&str, easeio_bench::experiments::Builder)> = vec![
        ("LEA", UniApp::Lea.builder()),
        ("DMA", UniApp::Dma.builder()),
        ("Temp.", UniApp::Temp.builder()),
        ("FIR filter", fir_builder(false)),
        ("Weather App.", weather_builder(false, false)),
    ];
    for (name, b) in apps {
        let mut mcu = Mcu::new(Supply::continuous());
        let app = b(&mut mcu);
        let inv = app.inventory;
        rows.push(vec![
            name.to_string(),
            inv.tasks.to_string(),
            inv.io_funcs.to_string(),
            inv.io_sites.to_string(),
            inv.dma_sites.to_string(),
            inv.io_blocks.to_string(),
        ]);
    }
    print_table(
        "Table 3 — tasks and I/O functions of evaluated applications",
        &[
            "app",
            "tasks",
            "I/O funcs",
            "call_IO sites",
            "DMA sites",
            "I/O blocks",
        ],
        &rows,
    );
    println!("\n(The paper reports tasks and I/O function counts per runtime; the");
    println!("application source is shared across runtimes here, so one row per app.)");
}
