//! Figure 13 — real-world RF-harvesting evaluation: execution-time
//! difference versus EaseIO across transmitter distances.

use easeio_bench::experiments::fig13;
use easeio_bench::format::print_table;

fn main() {
    println!("Figure 13 — DMA workload from a 3 W / 915 MHz RF harvester");
    println!("(wall time incl. recharge; this workload has no constant-data DMAs,");
    println!(" so EaseIO/Op coincides with EaseIO and EaseIO is the baseline)");
    let rows_data = fig13();
    let mut rows = Vec::new();
    for row in &rows_data {
        let base = row
            .measurements
            .iter()
            .find(|m| m.0 == "EaseIO")
            .expect("baseline present")
            .1 as f64;
        for (name, us, pf) in &row.measurements {
            rows.push(vec![
                format!("{}", row.distance_inch),
                name.to_string(),
                format!("{:.2}", *us as f64 / 1000.0),
                format!("{:+.2}", (*us as f64 - base) / 1000.0),
                pf.to_string(),
            ]);
        }
    }
    print_table(
        "Figure 13 — execution time vs distance (diff normalized to EaseIO)",
        &["distance in", "runtime", "total ms", "diff ms", "failures"],
        &rows,
    );
    println!("\nPaper shape: close to the transmitter nothing fails and the");
    println!("baselines' lower bookkeeping makes them marginally faster (negative");
    println!("diff); past the income/draw crossover failures appear, redundant");
    println!("re-execution burns extra harvested energy, recharges stretch, and");
    println!("Alpaca/InK fall increasingly behind — with more power failures too.");
}
