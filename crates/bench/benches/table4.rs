//! Table 4 — power failures and redundant I/O re-executions per semantic.

use easeio_bench::experiments::uni_task_summaries;
use easeio_bench::format::{pct, print_table};

fn main() {
    let runs = easeio_bench::runs();
    println!("Table 4 — totals over {runs} seeded runs, resets U[5,20] ms");
    let data = uni_task_summaries(runs);
    let mut rows = Vec::new();
    for rt_idx in 0..3 {
        let mut row = vec![data[0].1[rt_idx].runtime.to_string()];
        for (_, sums) in &data {
            let s = &sums[rt_idx];
            row.push(s.power_failures.to_string());
            row.push(s.reexecutions().to_string());
        }
        rows.push(row);
    }
    print_table(
        "Table 4 — power failures (PF) and redundant re-executions (Re-exe.)",
        &[
            "runtime",
            "PF(DMA)",
            "Re-exe(DMA)",
            "PF(Temp)",
            "Re-exe(Temp)",
            "PF(LEA)",
            "Re-exe(LEA)",
        ],
        &rows,
    );
    // Reduction summary like the paper's parenthetical percentages.
    let alpaca = &data;
    let red = |app: usize| {
        let a = alpaca[app].1[0].reexecutions();
        let e = alpaca[app].1[2].reexecutions();
        pct(a.saturating_sub(e), a.max(1))
    };
    println!("\nEaseIO redundant-I/O reduction vs Alpaca:");
    println!("  Single (DMA):  -{}   (paper: -76%)", red(0));
    println!("  Timely (Temp): -{}   (paper: -43%)", red(1));
    println!("  Always (LEA):  -{}   (paper:   0%)", red(2));
}
