//! Figure 12 — correct vs incorrect executions of the FIR filter under
//! intermittent power (the DMA write-after-read idempotence bug).

use easeio_bench::experiments::multi_task_summaries;
use easeio_bench::format::{pct, print_table};

fn main() {
    let runs = easeio_bench::runs();
    println!("Figure 12 — FIR correctness over {runs} seeded runs");
    let (fir, _) = multi_task_summaries(runs);
    let rows: Vec<Vec<String>> = fir
        .iter()
        .map(|s| {
            vec![
                s.runtime.to_string(),
                s.correct.to_string(),
                s.incorrect.to_string(),
                pct(s.incorrect, s.completed.max(1)),
            ]
        })
        .collect();
    print_table(
        "Figure 12 — FIR executions: correct / incorrect",
        &["runtime", "correct", "incorrect", "% incorrect"],
        &rows,
    );
    println!("\nPaper: Alpaca ~16% and InK ~21% incorrect, EaseIO 0%. The shared");
    println!("in/out buffer makes a failure after the write-back DMA re-filter the");
    println!("already-filtered chunk unless the runtime understands DMA semantics.");
}
