//! Table 5 — weather-classifier DNN with double- vs single-buffered
//! activations: execution times and correctness.

use easeio_bench::experiments::table5;
use easeio_bench::format::{ms, print_table};

fn main() {
    let runs = easeio_bench::runs();
    println!("Table 5 — {runs} intermittent runs per cell; Cont. = continuous power");
    let rows_data = table5(runs);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.runtime.to_string(),
                r.buffering.to_string(),
                ms(r.continuous_us),
                ms(r.intermittent_us),
                if r.correct == r.completed {
                    "yes".into()
                } else {
                    format!("NO ({}/{})", r.correct, r.completed)
                },
            ]
        })
        .collect();
    print_table(
        "Table 5 — DNN buffering strategies",
        &["runtime", "buffers", "Cont. ms", "Int. ms", "correct"],
        &rows,
    );
    println!("\nPaper: all three are correct with double buffering; with a single");
    println!("buffer only EaseIO stays correct, at a continuous-power premium");
    println!("(their 228 ms vs Alpaca's 186 ms) — the premium here is the");
    println!("privatization overhead visible in the Cont. column.");
}
