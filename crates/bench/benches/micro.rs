//! Criterion micro-benchmarks: host-side cost of the simulator and of the
//! EaseIO runtime primitives (these measure the *reproduction's* speed, not
//! the simulated MCU — the simulated costs are exact by construction).

use apps::dma_app::{self, DmaAppCfg};
use apps::harness::{run_once, run_traced, RuntimeKind};
use apps::weather::{self, WeatherCfg};
use criterion::{criterion_group, criterion_main, Criterion};
use mcu_emu::{Mcu, Supply, TimerResetConfig};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.bench_function("dma_app_easeio_intermittent", |b| {
        b.iter(|| {
            let builder = |mcu: &mut Mcu| dma_app::build(mcu, &DmaAppCfg::default());
            let r = run_once(
                &builder,
                RuntimeKind::EaseIo,
                Supply::timer(TimerResetConfig::default(), black_box(42)),
                42,
            );
            black_box(r.stats.power_failures)
        })
    });
    g.bench_function("weather_alpaca_intermittent", |b| {
        b.iter(|| {
            let builder = |mcu: &mut Mcu| weather::build(mcu, &WeatherCfg::default());
            let r = run_once(
                &builder,
                RuntimeKind::Alpaca,
                Supply::timer(TimerResetConfig::default(), black_box(7)),
                7,
            );
            black_box(r.stats.total_time_us())
        })
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    use easeio_core::flags::IoSlotTable;
    use kernel::TaskId;

    let mut g = c.benchmark_group("primitives");
    g.bench_function("flag_check_and_restore", |b| {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut table = IoSlotTable::new();
        let slot = table.ensure(&mut mcu, TaskId(0), 0);
        table
            .record_completion(&mut mcu, TaskId(0), 0, slot, 99, true, None)
            .unwrap();
        b.iter(|| {
            let locked = table.lock_is_set(&mut mcu, slot).unwrap();
            let v = table.restore_out(&mut mcu, slot).unwrap();
            black_box((locked, v))
        })
    });
    g.bench_function("regional_snapshot_first_touch", |b| {
        use easeio_core::regional::Regional;
        use mcu_emu::{NvVar, Region};
        let mut mcu = Mcu::new(Supply::continuous());
        let v: NvVar<i32> = NvVar::alloc(&mut mcu.mem, Region::Fram);
        let mut regional = Regional::new();
        b.iter(|| {
            // Clearing after each snapshot forces the first-touch path while
            // reusing the persistent slot (no allocator growth).
            regional
                .snap_before_access(&mut mcu, TaskId(0), 0, v.raw())
                .unwrap();
            regional.clear_task(TaskId(0));
            black_box(regional.slot_count())
        })
    });
    g.bench_function("memory_dma_copy_1kb", |b| {
        use mcu_emu::{AllocTag, Region};
        let mut mcu = Mcu::new(Supply::continuous());
        let src = mcu.mem.alloc(Region::Fram, 1024, AllocTag::App);
        let dst = mcu.mem.alloc(Region::Fram, 1024, AllocTag::App);
        b.iter(|| {
            periph::dma::transfer(&mut mcu.mem, src, dst, 1024);
            black_box(mcu.mem.read_bytes(dst, 4)[0])
        })
    });
    g.finish();
}

/// The tentpole's "effectively free when off" claim: a run with the default
/// disabled [`easeio_trace::TraceSink`] must cost within noise (≤1%) of the
/// pre-recorder simulator, because the fast path is one `Option` check and
/// the event closures are never evaluated. Compare `recorder/dma_untraced`
/// against `recorder/dma_traced` to see the enabled cost, and the two
/// `emit_*` benches for the per-call price.
fn bench_recorder(c: &mut Criterion) {
    use easeio_trace::{Event, InstantKind, TraceSink};

    let mut g = c.benchmark_group("recorder");
    g.bench_function("dma_untraced", |b| {
        b.iter(|| {
            let builder = |mcu: &mut Mcu| dma_app::build(mcu, &DmaAppCfg::default());
            let r = run_once(
                &builder,
                RuntimeKind::EaseIo,
                Supply::timer(TimerResetConfig::default(), black_box(42)),
                42,
            );
            black_box(r.stats.power_failures)
        })
    });
    g.bench_function("dma_traced", |b| {
        b.iter(|| {
            let builder = |mcu: &mut Mcu| dma_app::build(mcu, &DmaAppCfg::default());
            let r = run_traced(
                &builder,
                RuntimeKind::EaseIo,
                Supply::timer(TimerResetConfig::default(), black_box(42)),
                42,
            );
            black_box(r.events.len())
        })
    });
    g.bench_function("emit_disabled", |b| {
        let mut sink = TraceSink::disabled();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            sink.emit_with(|| Event::instant(black_box(n), n, InstantKind::Boot, "boot"));
            black_box(&sink);
        })
    });
    g.bench_function("emit_enabled", |b| {
        let mut sink = TraceSink::enabled();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            sink.emit_with(|| Event::instant(black_box(n), n, InstantKind::Boot, "boot"));
            black_box(&sink);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_primitives, bench_recorder);
criterion_main!(benches);
