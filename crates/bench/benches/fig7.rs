//! Figure 7 — uni-task total execution time decomposed into application
//! work, runtime overhead, and wasted work, under controlled power failures.

use easeio_bench::experiments::uni_task_summaries;
use easeio_bench::format::{ms, print_table};

fn main() {
    let runs = easeio_bench::runs();
    println!("Figure 7 — {runs} seeded runs per cell, resets U[5,20] ms");
    for (app, sums) in uni_task_summaries(runs) {
        let rows: Vec<Vec<String>> = sums
            .iter()
            .map(|s| {
                let n = s.completed.max(1);
                vec![
                    s.runtime.to_string(),
                    ms(s.mean_total_us()),
                    ms(s.useful_us() / n),
                    ms(s.overhead_us / n),
                    ms(s.wasted_us() / n),
                    ms(s.percentile_us(95)),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 7 — {}", app.label()),
            &[
                "runtime",
                "total ms",
                "app ms",
                "overhead ms",
                "wasted ms",
                "p95 ms",
            ],
            &rows,
        );
    }
    println!("\nPaper shape: EaseIO cuts total time sharply on Single (DMA),");
    println!("modestly on Timely (Temp.), and matches the baselines on Always");
    println!("(LEA) apart from slightly higher bookkeeping overhead.");
}
