//! Figure 11 — average energy consumption of the multi-task applications.

use easeio_bench::experiments::multi_task_summaries;
use easeio_bench::format::{print_table, uj};

fn main() {
    let runs = easeio_bench::runs();
    println!("Figure 11 — mean energy per run (µJ), {runs} seeded runs");
    let (fir, weather) = multi_task_summaries(runs);
    let mut rows = Vec::new();
    for s in fir.iter() {
        rows.push(vec![
            "FIR filter".to_string(),
            s.runtime.to_string(),
            uj(s.energy_nj / s.completed.max(1)),
        ]);
    }
    for s in weather.iter() {
        rows.push(vec![
            "Weather App.".to_string(),
            s.runtime.to_string(),
            uj(s.energy_nj / s.completed.max(1)),
        ]);
    }
    print_table(
        "Figure 11 — average energy per run (µJ)",
        &["app", "runtime", "energy µJ"],
        &rows,
    );
    let we = weather[2].energy_nj / weather[2].completed.max(1);
    let wa = weather[0].energy_nj / weather[0].completed.max(1);
    println!(
        "\nWeather: EaseIO/Alpaca energy = {:.3}  (paper: −17% for weather, −5% for FIR)",
        we as f64 / wa as f64
    );
}
