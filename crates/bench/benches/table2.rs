//! Table 2 — the EaseIO language constructs, demonstrated live.
//!
//! Prints the construct table and then proves each construct by compiling a
//! small program with the easec front-end and showing the transformation.

use easeio_bench::format::print_table;

fn main() {
    print_table(
        "Table 2 — EaseIO language abstractions and their implementations",
        &[
            "construct",
            "Rust API (kernel::TaskCtx)",
            "task language (easec)",
        ],
        &[
            vec![
                "_call_IO(name, type, ...)".into(),
                "ctx.call_io / call_io_dep".into(),
                "_call_IO(Temp, Timely, 10)".into(),
            ],
            vec![
                "_IO_block_begin(type,...)".into(),
                "ctx.io_block(sem, |ctx| ...)".into(),
                "_IO_block_begin(Single);".into(),
            ],
            vec![
                "_IO_block_end".into(),
                "(closure end)".into(),
                "_IO_block_end;".into(),
            ],
            vec![
                "_DMA_copy(*src, *dst, size)".into(),
                "ctx.dma_copy(_annotated)".into(),
                "_DMA_copy(a[0], b[4], 8);".into(),
            ],
        ],
    );

    let demo = r#"
        __nv int out;
        task demo {
            _IO_block_begin(Single);
            let t = _call_IO(Temp, Timely, 10);
            _IO_block_end;
            out = t;
            _call_IO(Send, Single, out);
            done;
        }
    "#;
    println!("\nLive demonstration — easec transformation of a Table-2 program:\n");
    println!("{}", easec::transform_source(demo).expect("compiles"));
}
