//! Table 6 — memory and code-size requirements (bytes).
//!
//! RAM/FRAM are measured exactly from the simulator's allocator; `.text` is
//! the documented per-construct code-size model (see
//! `kernel::footprint::CodeModel`).

use easeio_bench::experiments::table6;
use easeio_bench::format::print_table;

fn main() {
    let rows_data = table6();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.runtime.to_string(),
                r.footprint.text.to_string(),
                r.footprint.ram.to_string(),
                r.footprint.fram.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 6 — memory and code size requirements (B)",
        &["app", "runtime", ".text", "RAM", "FRAM"],
        &rows,
    );
    println!("\nPaper shape: Alpaca has the smallest .text, InK's kernel the largest;");
    println!("EaseIO adds ~1 KB of regional-privatization/DMA-handling code over");
    println!("Alpaca and carries the (configurable, default 4 KB) DMA privatization");
    println!("buffers in FRAM only for DMA-bearing apps.");
}
