//! Ablations of EaseIO design choices (DESIGN.md §7).
//!
//! 1. `Timely` window sweep: how the freshness window trades re-sensing
//!    against staleness on the temperature workload.
//! 2. Failure-intensity sweep: how EaseIO's advantage over Alpaca scales
//!    with the mean on-period on the DMA workload.
//! 3. `Exclude` annotation: privatization cost avoided on constant data
//!    (the EaseIO vs EaseIO/Op delta, also visible in Figure 10).

use apps::harness::{run_many, RuntimeKind};
use easeio_bench::experiments::{
    ablation_reset_period, ablation_timely_window, fir_builder, paper_cfg,
};
use easeio_bench::format::{ms, print_table};

fn main() {
    let runs = easeio_bench::runs().min(300);
    println!("Ablations — {runs} seeded runs per cell");

    let rows: Vec<Vec<String>> = ablation_timely_window(runs)
        .into_iter()
        .map(|(w, re, skipped, total)| {
            vec![
                w.to_string(),
                re.to_string(),
                skipped.to_string(),
                ms(total),
            ]
        })
        .collect();
    print_table(
        "Ablation 1 — Timely window sweep (temperature app, EaseIO)",
        &["window ms", "re-executions", "restores", "mean total ms"],
        &rows,
    );
    println!("  Longer windows restore more and re-sense less; the data ages more.");

    let fmt = |v: Option<u64>| match v {
        Some(us) => ms(us),
        None => "livelock".to_string(),
    };
    let rows: Vec<Vec<String>> = ablation_reset_period(runs)
        .into_iter()
        .map(|r| {
            let speedup = match (r.alpaca_us, r.easeio_us) {
                (Some(a), Some(e)) => format!("{:.2}x", a as f64 / e.max(1) as f64),
                (None, Some(_)) => "∞ (Alpaca never finishes)".to_string(),
                _ => "-".to_string(),
            };
            vec![
                r.mean_on_ms.to_string(),
                fmt(r.alpaca_us),
                fmt(r.easeio_us),
                speedup,
            ]
        })
        .collect();
    print_table(
        "Ablation 2 — failure-intensity sweep (DMA app)",
        &["mean on-period ms", "Alpaca ms", "EaseIO ms", "speedup"],
        &rows,
    );
    println!("  Denser failures → more redundant re-execution for Alpaca → larger win.");

    let cfg = paper_cfg(runs);
    let plain = run_many(
        "FIR",
        fir_builder(false).as_ref(),
        RuntimeKind::EaseIo,
        &cfg,
    );
    let op = run_many(
        "FIR",
        fir_builder(true).as_ref(),
        RuntimeKind::EaseIoOp,
        &cfg,
    );
    let rows = vec![
        vec![
            "EaseIO".to_string(),
            ms(plain.mean_total_us()),
            ms(plain.overhead_us / plain.completed.max(1)),
        ],
        vec![
            "EaseIO/Op (Exclude)".to_string(),
            ms(op.mean_total_us()),
            ms(op.overhead_us / op.completed.max(1)),
        ],
    ];
    print_table(
        "Ablation 3 — Exclude on constant-coefficient DMAs (FIR)",
        &["variant", "mean total ms", "overhead ms"],
        &rows,
    );
    println!("  Exclude skips privatization for data that cannot create WAR hazards.");

    // 4. Persistent timekeeping: without the external timer circuit the
    //    paper's platform carries (§4.1), Timely cannot verify freshness and
    //    degrades to Always.
    ablation_timekeeper(runs);

    // 5. Shared vs dedicated DMA privatization buffers (paper §6).
    ablation_buffer_sharing();
}

fn ablation_timekeeper(runs: u64) {
    use apps::temp_app::{self, TempAppCfg};
    use easeio_core::{EaseIoConfig, EaseIoRuntime};
    use kernel::{run_app, ExecConfig, Outcome};
    use mcu_emu::{Mcu, Supply, TimerResetConfig};

    let measure = |persistent: bool| -> (u64, u64) {
        let mut skipped = 0;
        let mut executed = 0;
        for seed in 0..runs {
            let mut mcu = Mcu::new(Supply::timer(TimerResetConfig::default(), seed));
            let mut p = periph::Peripherals::new(seed);
            let app = temp_app::build(&mut mcu, &TempAppCfg::default());
            let mut rt = EaseIoRuntime::new(EaseIoConfig {
                persistent_timekeeper: persistent,
                ..EaseIoConfig::default()
            });
            let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Completed);
            skipped += r.stats.io_skipped;
            executed += r.stats.io_executed;
        }
        (executed, skipped)
    };
    let (with_exec, with_skip) = measure(true);
    let (without_exec, without_skip) = measure(false);
    print_table(
        "Ablation 4 — persistent timekeeping (temperature app, EaseIO)",
        &["timekeeper", "senses executed", "restores"],
        &[
            vec![
                "persistent".into(),
                with_exec.to_string(),
                with_skip.to_string(),
            ],
            vec![
                "volatile".into(),
                without_exec.to_string(),
                without_skip.to_string(),
            ],
        ],
    );
    println!("  Timely needs the external timing circuit; without it every");
    println!("  reboot forces a conservative re-sense (Timely ≈ Always).");
}

fn ablation_buffer_sharing() {
    use apps::weather::{self, WeatherCfg};
    use easeio_core::dma_rules::BufferMode;
    use easeio_core::{EaseIoConfig, EaseIoRuntime};
    use kernel::{run_app, ExecConfig, Outcome, Verdict};
    use mcu_emu::{Mcu, Supply};

    let measure = |mode: BufferMode| -> u32 {
        let mut mcu = Mcu::new(Supply::continuous());
        let mut p = periph::Peripherals::new(7);
        let app = weather::build(&mut mcu, &WeatherCfg::default());
        let mut rt = EaseIoRuntime::new(EaseIoConfig {
            dma_buffer_mode: mode,
            ..EaseIoConfig::default()
        });
        let r = run_app(&app, &mut rt, &mut mcu, &mut p, &ExecConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.verdict, Some(Verdict::Correct));
        rt.dma_pool_used()
    };
    let dedicated = measure(BufferMode::Dedicated);
    let shared = measure(BufferMode::Shared { slot_bytes: 288 });
    print_table(
        "Ablation 5 — DMA privatization buffers (weather app)",
        &["mode", "pool bytes"],
        &[
            vec!["dedicated per site".into(), dedicated.to_string()],
            vec!["shared across tasks".into(), shared.to_string()],
        ],
    );
    println!("  Sharing slots across tasks (paper §6) trades pool memory for a");
    println!("  hard per-transfer size cap, enforced at run time here.");
}
