//! Table 1 — qualitative comparison of intermittent runtimes' I/O features.
//!
//! The paper's Table 1 is a feature matrix; this reproduction implements
//! three of its rows (Alpaca/InK as one task-based row, EaseIO) and the
//! naive runtime as the didactic floor. Each claim in this table is backed
//! by an executable artifact named in the right-hand column.

use easeio_bench::format::print_table;

fn main() {
    let rows = vec![
        vec![
            "Alpaca / InK".into(),
            "yes".into(),
            "high".into(),
            "yes".into(),
            "no".into(),
            "no".into(),
            "no".into(),
            "fig7/fig12/table5".into(),
        ],
        vec![
            "Naive (no privatization)".into(),
            "yes".into(),
            "high".into(),
            "yes".into(),
            "no".into(),
            "no".into(),
            "no".into(),
            "unsafe_branch/motion tests".into(),
        ],
        vec![
            "EaseIO (this reproduction)".into(),
            "no / low".into(),
            "no".into(),
            "no".into(),
            "yes".into(),
            "yes".into(),
            "yes".into(),
            "fig7/fig12/table5/model_check".into(),
        ],
    ];
    print_table(
        "Table 1 — I/O feature matrix (each cell is backed by an experiment)",
        &[
            "runtime",
            "repeated I/O",
            "wasted I/O",
            "mem. inconsistency",
            "safe DMA",
            "timely I/O",
            "semantic re-exec",
            "evidence",
        ],
        &rows,
    );
    println!("\nIBIS / Samoyed / Ocelot (compile-time atomic regions) are discussed");
    println!("in the paper but not re-implemented: their defining behaviour for");
    println!("these workloads — wholesale re-execution of atomic peripheral");
    println!("regions — is the task-atomicity the baselines already exhibit.");
}
