//! Offline stand-in for `criterion` (API subset).
//!
//! Provides `Criterion::benchmark_group` / `bench_function` / `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple calibrated wall-clock mean: warm up, pick an iteration count that
//! fills a fixed measurement window, report mean ns/iteration. No statistics
//! beyond min/mean are computed — good enough to compare a hot path before
//! and after a change on the same machine, which is all the micro bench in
//! this workspace is for.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Compatibility no-op (the real crate parses CLI filters here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            window: self.measurement_window,
            _criterion: self,
        }
    }
}

/// A named collection of benchmark functions.
pub struct BenchmarkGroup<'a> {
    window: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            window: self.window,
            mean_ns: 0.0,
            min_ns: 0.0,
        };
        f(&mut b);
        println!(
            "  {id:<44} mean {:>12.1} ns/iter   min {:>12.1} ns/iter",
            b.mean_ns, b.min_ns
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// workload.
pub struct Bencher {
    window: Duration,
    mean_ns: f64,
    min_ns: f64,
}

impl Bencher {
    /// Measures `f`, keeping its output alive so the optimizer cannot drop
    /// the workload.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up + calibration: how many iterations fit in ~1/10 window?
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < self.window / 10 {
            std::hint::black_box(f());
            calib_iters += 1;
        }
        let per_iter = (self.window / 10).as_nanos() as f64 / calib_iters.max(1) as f64;
        let target = ((self.window.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);

        // Measure in 5 batches; report overall mean and best batch.
        let batches = 5u64;
        let batch_iters = (target / batches).max(1);
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..batches {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        let iters = (batch_iters * batches) as f64;
        self.mean_ns = total.as_nanos() as f64 / iters;
        self.min_ns = best.as_nanos() as f64 / batch_iters as f64;
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
