//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no network access and no vendored registry, so
//! the workspace patches `rand` to this crate (see `[patch.crates-io]` in
//! the root manifest). Only the surface the simulator actually uses is
//! provided: `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over integer ranges. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic per seed, which is the only
//! property the simulator relies on (failure schedules are compared across
//! runs of the *same* seed, never against golden sequences of the real
//! `rand`).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Named RNGs (only `StdRng`).

    /// Deterministic xoshiro256++ generator, API-compatible with
    /// `rand::rngs::StdRng` for the subset this workspace uses.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_u64(state)
        }
    }
}

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Integer types samplable uniformly from a range.
pub trait SampleUniform: Copy {
    /// Widens to `i128` (lossless for every integer up to 64 bits).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; the value is guaranteed in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_span<G: RngCore + ?Sized>(rng: &mut G, lo: i128, span: u128) -> i128 {
    debug_assert!(span > 0, "empty sample range");
    // Modulo bias is ≤ span/2^64, far below anything the simulator's
    // statistics could resolve; the real rand's widening multiply is not
    // worth reproducing here.
    lo + (rng.next_u64() as u128 % span) as i128
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        T::from_i128(sample_span(rng, lo, (hi - lo) as u128))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        T::from_i128(sample_span(rng, lo, (hi - lo + 1) as u128))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| r.random_range(0u64..1000))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = r.random_range(5u64..20);
            assert!((5..20).contains(&a));
            let b = r.random_range(-50i32..50);
            assert!((-50..50).contains(&b));
            let c = r.random_range(3u8..=5);
            assert!((3..=5).contains(&c));
            let d = r.random_range(0usize..3);
            assert!(d < 3);
        }
    }

    #[test]
    fn covers_the_whole_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }
}
