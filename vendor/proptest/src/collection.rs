//! Collection strategies (`vec` only).

use crate::{Strategy, TestRng};

/// Length bounds for [`vec`](fn@vec).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

/// Strategy producing `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
