//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! The build container cannot reach a crate registry, so the workspace
//! patches `proptest` to this crate. It implements the surface the test
//! suite uses — the `proptest!` macro, `Strategy` with `prop_map`, integer
//! ranges, tuples, `Just`, `prop_oneof!`, `collection::vec`, `any::<T>()`,
//! a printable-string strategy, and `prop_assert*` — over a deterministic
//! per-test RNG. Failing cases are reported with their case index so a run
//! is reproducible (the sampling sequence is a pure function of the test
//! name), but no shrinking is attempted: the seed-style diagnostics the
//! tests themselves print (program seeds, schedule values) are the
//! minimization story here.

use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Deterministic generator driving all sampling (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a 64-bit value via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Seeds deterministically from a test name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        Self::seed_from_u64(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed `prop_assert*` inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator. Unlike real proptest there is no intermediate value
/// tree: `sample` draws a concrete value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                // Full-width inclusive ranges wrap to `any`-style draws.
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String-pattern strategy: a `&str` is interpreted as a (tiny subset of a)
/// regex. Supported: a char-class escape (`\PC` — printable, the only class
/// the suite uses) with an optional `{min,max}` length suffix; anything
/// else falls back to printable strings of length 0..=64. The intent
/// (feeding a parser arbitrary well-formed-ish text) is preserved even
/// though the full proptest regex engine is not.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_repeat_suffix(self).unwrap_or((0, 64));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                // Mostly ASCII printable with occasional multi-byte chars,
                // so byte-offset handling in the lexer gets exercised.
                match rng.below(12) {
                    0 => 'λ',
                    1 => '¬',
                    2 => '\t',
                    _ => (0x20 + rng.below(0x5F) as u8) as char,
                }
            })
            .collect()
    }
}

fn parse_repeat_suffix(pat: &str) -> Option<(usize, usize)> {
    let open = pat.rfind('{')?;
    let close = pat.rfind('}')?;
    let body = pat.get(open + 1..close)?;
    let (a, b) = body.split_once(',')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a proptest case; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {:?} != {:?} ({} vs {})",
            a, b, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})", format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Inequality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: both sides are {:?} ({} vs {})",
            a,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// The test-definition macro. Each `fn name(args in strategies) { body }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, cfg.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..10, 5i32..=9), c in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b), "b={}", b);
            prop_assert_eq!(c, c);
        }

        #[test]
        fn mapped_and_union(
            v in prop_oneof![Just(1u8), Just(2u8), (4u8..6).prop_map(|x| x)],
            s in crate::collection::vec(0u32..3, 1..5),
        ) {
            prop_assert!(v == 1 || v == 2 || v == 4 || v == 5);
            prop_assert!(!s.is_empty() && s.len() < 5);
            prop_assert!(s.iter().all(|x| *x < 3));
        }

        #[test]
        fn string_pattern(s in "\\PC{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let strat = (0u64..1000, 0u64..1000);
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
